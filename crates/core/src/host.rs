//! The simulation host for sans-io protocol machines.
//!
//! [`SimHost`] wraps a [`Machine`] together with its host-owned RNG and
//! implements the simulator's [`Node`] trait by building an [`Env`] from
//! the callback [`Ctx`], running [`Machine::handle`], and draining the
//! returned [`Output`] commands back into the `Ctx` buffers. The world
//! therefore applies effects in exactly the order the protocol emitted
//! them, and the machine itself never touches simulator types.
//!
//! An optional **tap** records every `(input, outputs)` exchange — the
//! deterministic-replay test replays the recorded inputs against a fresh
//! machine and asserts the output streams are byte-identical.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use flower_proto::io::{machine_rng, Env, Input, Machine, Output};
use rand::rngs::StdRng;
use simnet::{Ctx, Node, NodeId, Time};

/// One recorded `handle` exchange (tap attached).
pub struct TapEntry<M: Machine> {
    pub now: Time,
    pub input: Input<M>,
    pub outputs: Vec<Output<M>>,
}

/// Shared recording buffer for one tapped host.
pub type TapLog<M> = Rc<RefCell<Vec<TapEntry<M>>>>;

/// A [`Machine`] plus the host-side state the simulator owns for it: its
/// deterministic RNG (seeded via [`machine_rng`]) and an optional tap.
pub struct SimHost<M: Machine> {
    machine: M,
    rng: StdRng,
    tap: Option<TapLog<M>>,
    /// Recycled output buffer: drained after every `handle_with` call and
    /// handed back for the next one, so steady-state dispatch reuses one
    /// allocation per node.
    scratch: Vec<Output<M>>,
}

impl<M: Machine> SimHost<M> {
    /// Host `machine` under `run_seed`; the RNG is derived per-node so a
    /// machine's draws depend only on the run seed, its id and its own
    /// input sequence.
    pub fn new(run_seed: u64, me: NodeId, machine: M) -> SimHost<M> {
        SimHost {
            machine,
            rng: machine_rng(run_seed, me),
            tap: None,
            scratch: Vec::new(),
        }
    }

    /// As [`SimHost::new`], recording every exchange into `log`.
    pub fn tapped(run_seed: u64, me: NodeId, machine: M, log: TapLog<M>) -> SimHost<M> {
        SimHost {
            machine,
            rng: machine_rng(run_seed, me),
            tap: Some(log),
            scratch: Vec::new(),
        }
    }

    /// The hosted machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    fn drive(&mut self, ctx: &mut Ctx<Self>, input: Input<M>) {
        let recorded = self.tap.is_some().then(|| input.clone());
        let env = Env {
            now: ctx.now(),
            me: ctx.me(),
            locality: ctx.locality(),
            rng: &mut self.rng,
            tracing: ctx.tracing(),
        };
        let buf = std::mem::take(&mut self.scratch);
        let mut outputs = self.machine.handle_with(env, input, buf);
        if let (Some(tap), Some(input)) = (&self.tap, recorded) {
            tap.borrow_mut().push(TapEntry {
                now: ctx.now(),
                input,
                outputs: outputs.clone(),
            });
        }
        for out in outputs.drain(..) {
            match out {
                Output::Send { to, msg } => ctx.send(to, msg),
                Output::SetTimer { delay_ms, timer } => ctx.set_timer(delay_ms, timer),
                Output::Report(r) => ctx.report(r),
                Output::Trace { name, fields } => ctx.trace(name, || fields),
                // The simulator has no API clients; responses are inert.
                Output::Respond { .. } => {}
                Output::Stop => ctx.stop(),
            }
        }
        self.scratch = outputs;
    }
}

/// Engine introspection (`host.is_directory()`, gauges, ring probes) reads
/// the machine directly through the host.
impl<M: Machine> Deref for SimHost<M> {
    type Target = M;
    fn deref(&self) -> &M {
        &self.machine
    }
}

impl<M: Machine> DerefMut for SimHost<M> {
    fn deref_mut(&mut self) -> &mut M {
        &mut self.machine
    }
}

impl<M: Machine> Node for SimHost<M> {
    type Msg = M::Msg;
    type Timer = M::Timer;
    type Report = M::Report;

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        self.drive(ctx, Input::Start);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: NodeId, msg: M::Msg) {
        self.drive(ctx, Input::Deliver { from, msg });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Self>, timer: M::Timer) {
        self.drive(ctx, Input::Timer(timer));
    }

    fn on_leave(&mut self, ctx: &mut Ctx<Self>) {
        self.drive(ctx, Input::Leave);
    }

    fn msg_class(msg: &M::Msg) -> &'static str {
        M::msg_class(msg)
    }

    fn timer_class(timer: &M::Timer) -> &'static str {
        M::timer_class(timer)
    }

    fn msg_wire_bytes(msg: &M::Msg) -> usize {
        M::msg_wire_bytes(msg)
    }
}
