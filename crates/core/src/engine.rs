//! The Flower-CDN experiment engine: builds the world of §6.1 (topology,
//! initial D-ring, churn schedule, origin servers), runs it, and collects
//! the measurement records.

use std::cell::RefCell;
use std::rc::Rc;

use cdn_metrics::{GaugeRegistry, QueryRecord, QueryStats};
use chord::{Chord, NodeRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{ClassCountSink, LocalityId, NodeId, Point, Time, Topology, TraceSink, World};
use workload::{generate_sessions, sample_exp, Catalog, WebsiteId};

use crate::bootstrap::{Bootstrap, SharedBootstrap};
use crate::chaos_driver::{self, OriginDial};
use crate::config::SimParams;
use crate::dring::DirPosition;
use crate::host::{SimHost, TapLog};
use crate::peer::{FlowerPeer, FlowerReport, PeerCtx};

/// The simulator node type hosting the Flower-CDN machine.
pub type FlowerHost = SimHost<FlowerPeer>;

/// Engine-level control events scheduled into the simulation.
pub enum Control {
    /// A fresh peer arrives (churn), interested in `website`. When its
    /// `lifetime_ms` expire it fails silently — or leaves gracefully if
    /// `graceful` (set per session from `SimParams::leave_probability`).
    Spawn {
        website: WebsiteId,
        lifetime_ms: u64,
        graceful: bool,
    },
    /// The session of `node` expires: silent failure (§6.1 — peers never
    /// leave gracefully in the headline runs).
    Fail(NodeId),
    /// The session of `node` expires through the graceful-leave path: its
    /// hand-over (§5.2.2) runs before removal.
    Leave(NodeId),
    /// A scheduled fault from a [`chaos::Scenario`] fires now.
    Chaos(chaos::FaultAction),
    /// Periodic gauge-sampling tick; armed by [`FlowerSim::enable_gauges`]
    /// and self-rescheduling.
    Sample,
}

/// Sampling state behind `enable_gauges`: the shared registry the samples
/// land in, plus the per-class delivery counter used to turn cumulative
/// counts into rates.
pub(crate) struct GaugeState {
    pub(crate) period_ms: u64,
    pub(crate) registry: Rc<RefCell<GaugeRegistry>>,
    class_counts: ClassCountSink,
    last_counts: std::collections::BTreeMap<&'static str, u64>,
    last_events: u64,
    /// `rate/<class>` series names, formatted once per class and interned;
    /// steady-state sampling resolves a 4-byte symbol instead of
    /// re-running `format!` for every class on every tick.
    rate_names: intern::Interner,
    rate_syms: std::collections::BTreeMap<&'static str, intern::Symbol>,
}

/// The next exact multiple of `period_ms` strictly after `now`. Gauge
/// ticks land on aligned sim-time boundaries — `period, 2·period, …` —
/// regardless of when sampling was enabled or of jitter in the enabling
/// path, so gauge rows line up across seeds and systems.
pub(crate) fn next_sample_at(now: Time, period_ms: u64) -> Time {
    Time::from_millis((now.as_millis() / period_ms + 1) * period_ms)
}

impl GaugeState {
    pub(crate) fn new(period_ms: u64, class_counts: ClassCountSink) -> GaugeState {
        assert!(period_ms > 0, "gauge period must be positive");
        GaugeState {
            period_ms,
            registry: Rc::new(RefCell::new(GaugeRegistry::new())),
            class_counts,
            last_counts: std::collections::BTreeMap::new(),
            last_events: 0,
            rate_names: intern::Interner::new(),
            rate_syms: std::collections::BTreeMap::new(),
        }
    }

    pub(crate) fn record(&self, name: &str, at_ms: u64, value: f64) {
        self.registry.borrow_mut().record(name, at_ms, value);
    }

    /// Record one `rate/<class>` point (messages per second delivered since
    /// the previous sample) for every protocol class seen so far.
    pub(crate) fn sample_message_rates(&mut self, at_ms: u64) {
        let counts = self.class_counts.counts();
        let secs = self.period_ms as f64 / 1000.0;
        {
            let mut reg = self.registry.borrow_mut();
            for (class, &total) in &counts {
                let sym = match self.rate_syms.get(class) {
                    Some(&sym) => sym,
                    None => {
                        let sym = self.rate_names.intern(&format!("rate/{class}"));
                        self.rate_syms.insert(class, sym);
                        sym
                    }
                };
                let prev = self.last_counts.get(class).copied().unwrap_or(0);
                reg.record(
                    self.rate_names.resolve(sym),
                    at_ms,
                    (total - prev) as f64 / secs,
                );
            }
        }
        self.last_counts = counts;
    }

    /// Record the event-loop gauges: scheduler queue depth right now and
    /// events dispatched per sim-second since the previous sample.
    pub(crate) fn sample_event_loop(&mut self, at_ms: u64, queue_depth: usize, total_events: u64) {
        let secs = self.period_ms as f64 / 1000.0;
        let delta = total_events - self.last_events;
        self.last_events = total_events;
        let mut reg = self.registry.borrow_mut();
        reg.record("queue_depth", at_ms, queue_depth as f64);
        reg.record("events_per_sim_sec", at_ms, delta as f64 / secs);
    }

    /// Snapshot of the accumulated series for a finished run.
    pub(crate) fn snapshot(&self) -> GaugeRegistry {
        self.registry.borrow().clone()
    }
}

/// Everything a finished run produced.
pub struct RunResult {
    /// Count per low-level protocol event (diagnostics). The map is
    /// sparse: a key is present iff the event was reported at least once
    /// during the run, so a missing key means zero occurrences. Counts
    /// cover the whole run regardless of warm-up windows, and Squirrel
    /// runs map their own events onto this shared vocabulary so both
    /// systems are inspectable the same way.
    pub events: std::collections::BTreeMap<crate::peer::ProtocolEvent, u64>,
    /// One record per completed object query (active websites only).
    pub records: Vec<QueryRecord>,
    /// Directory replacements observed (position repairs, §5.2).
    pub replacements: u64,
    /// PetalUp splits observed (§4).
    pub splits: u64,
    /// Aggregate stats over `records`.
    pub stats: QueryStats,
    /// Peak live population seen at sampling points.
    pub peak_population: usize,
    /// Total protocol messages delivered over the run — the paper's
    /// "incurred overhead" axis. Includes everything: maintenance
    /// (gossip, keepalive, push, DHT stabilization) and query traffic.
    pub messages_delivered: u64,
    /// Sampled gauge series (population, D-ring size, petal sizes,
    /// per-class message rates). Empty unless `enable_gauges` was called
    /// before the run.
    pub gauges: GaugeRegistry,
    /// Performance cell of this run (wall clock, events/sec, per-phase
    /// breakdown, per-class message bytes). `None` unless
    /// [`crate::driver::SimDriver::enable_profiling`] was called.
    pub perf: Option<profile::RunPerf>,
}

impl RunResult {
    /// Messages delivered per completed query — the cost of the achieved
    /// hit ratio.
    pub fn messages_per_query(&self) -> f64 {
        if self.stats.queries == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.stats.queries as f64
        }
    }

    /// The schema-stable scalar summary of this run — what the sweep
    /// orchestrator aggregates and the bench binaries serialize (one CSV /
    /// JSON shape for every system; see [`cdn_metrics::RunSummary`]).
    pub fn summary(&self) -> cdn_metrics::RunSummary {
        cdn_metrics::RunSummary {
            queries: self.stats.queries,
            hits: self.stats.hits,
            hit_ratio: self.stats.hit_ratio(),
            mean_lookup_ms: self.stats.mean_lookup_ms(),
            mean_transfer_ms: self.stats.mean_transfer_ms(),
            mean_dht_hops: self.stats.mean_dht_hops(),
            messages_delivered: self.messages_delivered,
            messages_per_query: self.messages_per_query(),
            replacements: self.replacements,
            splits: self.splits,
            peak_population: self.peak_population as u64,
        }
    }

    #[allow(clippy::too_many_arguments)] // private constructor, both engines feed it
    fn from_reports(
        records: Vec<QueryRecord>,
        replacements: u64,
        splits: u64,
        peak: usize,
        events: std::collections::BTreeMap<crate::peer::ProtocolEvent, u64>,
        messages_delivered: u64,
        gauges: GaugeRegistry,
        perf: Option<profile::RunPerf>,
    ) -> Self {
        let mut stats = QueryStats::default();
        for r in &records {
            stats.record(r);
        }
        RunResult {
            events,
            records,
            replacements,
            splits,
            stats,
            peak_population: peak,
            messages_delivered,
            gauges,
            perf,
        }
    }
}

/// Build the [`profile::RunPerf`] cell of a finished profiled run from the
/// world's profiler and scheduler counters plus the engine's wall-clock /
/// allocation baselines captured at construction. Shared by both engines
/// so the BENCH cells of Flower-CDN and Squirrel are directly comparable.
pub(crate) fn collect_run_perf<N: simnet::Node, C>(
    world: &World<N, C>,
    system: &str,
    params: &SimParams,
    built_at: std::time::Instant,
    alloc_base: u64,
) -> profile::RunPerf {
    let events = world.stats().events_processed();
    profile::RunPerf {
        system: system.to_string(),
        population: params.population as u64,
        seed: params.seed,
        sim_hours: world.now().as_millis() as f64 / 3_600_000.0,
        wall_ms: built_at.elapsed().as_secs_f64() * 1000.0,
        events,
        events_per_sec: 0.0,
        wall_ms_per_sim_hour: 0.0,
        peak_rss_bytes: profile::peak_rss_bytes(),
        allocs: profile::alloc_count().saturating_sub(alloc_base),
        allocs_per_event: 0.0,
        phases: world.profiler().phase_rows(),
        messages: world.profiler().msg_rows(),
    }
    .with_derived()
}

/// The Flower-CDN simulation.
pub struct FlowerSim {
    params: Rc<SimParams>,
    catalog: Rc<Catalog>,
    bootstrap: SharedBootstrap,
    world: World<FlowerHost, Control>,
    /// Per-website origin server coordinates.
    origins: Vec<Point>,
    origin_dial: Rc<OriginDial>,
    engine_rng: StdRng,
    gauges: Option<GaugeState>,
    /// Wall-clock and allocation baselines for the perf cell, captured at
    /// construction so setup cost is part of the measured run.
    built_at: std::time::Instant,
    alloc_base: u64,
}

impl FlowerSim {
    /// Build the t=0 state: topology, origin servers, the initial D-ring of
    /// one directory peer per (website, locality), and the churn schedule.
    pub fn new(params: SimParams) -> FlowerSim {
        let built_at = std::time::Instant::now();
        let alloc_base = profile::alloc_count();
        let params = Rc::new(params);
        let catalog = Rc::new(Catalog::new(params.catalog.clone()));
        let mut engine_rng = StdRng::seed_from_u64(params.seed ^ 0xE61E);
        let topology = Topology::new(params.topology.clone(), &mut engine_rng);
        let origins: Vec<Point> = (0..params.catalog.websites)
            .map(|_| {
                Point::new(
                    engine_rng.gen_range(0.0..params.topology.world_size),
                    engine_rng.gen_range(0.0..params.topology.world_size),
                )
            })
            .collect();
        let bootstrap = Bootstrap::shared();
        let world: World<FlowerHost, Control> = World::new(topology, params.seed);

        let mut sim = FlowerSim {
            params: Rc::clone(&params),
            catalog,
            bootstrap,
            world,
            origins,
            origin_dial: OriginDial::shared(),
            engine_rng,
            gauges: None,
            built_at,
            alloc_base,
        };
        sim.build_initial_dring();
        sim.schedule_churn();
        sim
    }

    /// "We start with a population of k×|W| = 600 directory peers … which
    /// form the initial D-ring (one directory peer per couple)."
    fn build_initial_dring(&mut self) {
        let k = self.params.topology.localities;
        let websites = self.params.catalog.websites;
        // Assign node ids in spawn order and collect the ring first.
        let mut members: Vec<(WebsiteId, LocalityId, NodeRef)> = Vec::new();
        let mut next_index = self.world.next_id().index();
        for ws in 0..websites {
            for loc in 0..k {
                let position = DirPosition::base(WebsiteId(ws), LocalityId(loc));
                members.push((
                    WebsiteId(ws),
                    LocalityId(loc),
                    NodeRef::new(NodeId::from_index(next_index), position.chord_id()),
                ));
                next_index += 1;
            }
        }
        let mut ring: Vec<NodeRef> = members.iter().map(|&(_, _, r)| r).collect();
        ring.sort_by_key(|r| r.id.0);
        for (ws, loc, me_ref) in members {
            let ring_idx = ring
                .binary_search_by_key(&me_ref.id.0, |r| r.id.0)
                .expect("member in ring");
            let (chord, actions) = Chord::converged(ring_idx, &ring, self.params.chord.clone());
            let position = DirPosition::base(ws, loc);
            let at = self
                .world
                .topology()
                .sample_point_in(loc, &mut self.engine_rng);
            let pcx = self.peer_ctx(ws, at);
            let run_seed = self.params.seed;
            let spawned = self.world.spawn(at, |me, locality| {
                debug_assert_eq!(me, me_ref.node);
                let peer =
                    FlowerPeer::new_initial_directory(pcx, me, locality, position, chord, actions);
                SimHost::new(run_seed, me, peer)
            });
            debug_assert_eq!(spawned, me_ref.node);
            self.bootstrap.borrow_mut().add(me_ref);
        }
    }

    /// Schedule the full churn: lifetimes for the initial directories, and
    /// Poisson arrivals (each a future `Spawn`) for the rest of the run.
    fn schedule_churn(&mut self) {
        let churn = self.params.churn();
        let initial = self.params.initial_directories();
        let sessions = generate_sessions(&churn, initial, &mut self.engine_rng);
        for (i, s) in sessions.iter().enumerate() {
            if i < initial {
                // Already spawned; only their departure is scheduled.
                let id = NodeId::from_index(i);
                let end = if s.graceful {
                    Control::Leave(id)
                } else {
                    Control::Fail(id)
                };
                self.world
                    .schedule_control(Time::from_millis(s.departure_ms()), end);
            } else {
                let website = self.catalog.assign_interest(&mut self.engine_rng);
                self.world.schedule_control(
                    Time::from_millis(s.arrival_ms),
                    Control::Spawn {
                        website,
                        lifetime_ms: s.lifetime_ms,
                        graceful: s.graceful,
                    },
                );
            }
        }
    }

    fn peer_ctx(&self, website: WebsiteId, at: Point) -> PeerCtx {
        let origin = self.origins[website.0 as usize];
        let origin_latency_ms = self.world.topology().latency_between(at, origin);
        PeerCtx {
            catalog: Rc::clone(&self.catalog),
            params: Rc::clone(&self.params),
            bootstrap: Rc::clone(&self.bootstrap),
            website,
            origin_latency_ms,
            origin_dial: Rc::clone(&self.origin_dial),
            profiler: self.world.profiler().clone(),
        }
    }

    fn run_until_inner(&mut self, t: Time) {
        let catalog = Rc::clone(&self.catalog);
        let params = Rc::clone(&self.params);
        let bootstrap = Rc::clone(&self.bootstrap);
        let origins = self.origins.clone();
        let dial = Rc::clone(&self.origin_dial);
        // engine_rng is used inside the control handler: split it out.
        let mut rng = self.engine_rng.clone();
        let mut gauges = self.gauges.take();
        self.world.run(t, |world, control| match control {
            Control::Spawn {
                website,
                lifetime_ms,
                graceful,
            } => {
                let at = world.topology().sample_point(&mut rng);
                let origin = origins[website.0 as usize];
                let origin_latency_ms = world.topology().latency_between(at, origin);
                let pcx = PeerCtx {
                    catalog: Rc::clone(&catalog),
                    params: Rc::clone(&params),
                    bootstrap: Rc::clone(&bootstrap),
                    website,
                    origin_latency_ms,
                    origin_dial: Rc::clone(&dial),
                    profiler: world.profiler().clone(),
                };
                let id = world.spawn(at, |me, locality| {
                    SimHost::new(params.seed, me, FlowerPeer::new_client(pcx, me, locality))
                });
                let end_at = world.now() + lifetime_ms;
                let end = if graceful {
                    Control::Leave(id)
                } else {
                    Control::Fail(id)
                };
                world.schedule_control(end_at, end);
            }
            Control::Fail(id) => {
                world.fail(id);
                // The rendezvous service health-checks its entries.
                bootstrap.borrow_mut().remove(id);
            }
            Control::Leave(id) => {
                world.leave(id);
                bootstrap.borrow_mut().remove(id);
            }
            Control::Chaos(action) => {
                apply_flower_chaos(
                    world, action, &mut rng, &bootstrap, &catalog, &params, &dial,
                );
            }
            Control::Sample => {
                if let Some(g) = gauges.as_mut() {
                    sample_flower_gauges(g, world);
                    world.schedule_control(
                        next_sample_at(world.now(), g.period_ms),
                        Control::Sample,
                    );
                }
            }
        });
        self.engine_rng = rng;
        self.gauges = gauges;
    }

    /// Live directory peers right now.
    pub fn directory_count(&self) -> usize {
        self.world
            .live_nodes()
            .filter(|(_, p)| p.is_directory())
            .count()
    }

    /// Petal size distribution: (position → content peers managed), over
    /// live directories.
    pub fn directory_loads(&self) -> Vec<(DirPosition, usize)> {
        self.world
            .live_nodes()
            .filter_map(|(_, p)| {
                p.directory_position()
                    .map(|pos| (pos, p.directory_load().unwrap_or(0)))
            })
            .collect()
    }

    /// Access the world (tests and ad-hoc inspection).
    pub fn world(&self) -> &World<FlowerHost, Control> {
        &self.world
    }

    /// Manually spawn a client peer interested in `website`, placed in
    /// `locality`, with no scheduled failure — protocol tests drive churn
    /// themselves. Returns its id.
    pub fn spawn_client(&mut self, website: WebsiteId, locality: LocalityId) -> NodeId {
        let at = self
            .world
            .topology()
            .sample_point_in(locality, &mut self.engine_rng);
        let pcx = self.peer_ctx(website, at);
        let run_seed = self.params.seed;
        self.world.spawn(at, |me, loc| {
            SimHost::new(run_seed, me, FlowerPeer::new_client(pcx, me, loc))
        })
    }

    /// As [`FlowerSim::spawn_client`], but recording every machine
    /// input/output exchange into `log` (the deterministic-replay test).
    pub fn spawn_client_tapped(
        &mut self,
        website: WebsiteId,
        locality: LocalityId,
        log: TapLog<FlowerPeer>,
    ) -> NodeId {
        let at = self
            .world
            .topology()
            .sample_point_in(locality, &mut self.engine_rng);
        let pcx = self.peer_ctx(website, at);
        let run_seed = self.params.seed;
        self.world.spawn(at, |me, loc| {
            SimHost::tapped(run_seed, me, FlowerPeer::new_client(pcx, me, loc), log)
        })
    }

    /// Failure injection: silently kill a specific peer right now (tests).
    pub fn fail_peer(&mut self, id: NodeId) {
        self.world.fail(id);
        self.bootstrap.borrow_mut().remove(id);
    }

    /// Graceful departure of a specific peer (exercises the §5.2.2
    /// hand-over path, which the paper's fail-only churn never runs).
    pub fn leave_peer(&mut self, id: NodeId) {
        self.world.leave(id);
        self.bootstrap.borrow_mut().remove(id);
    }

    /// The shared rendezvous registry (replay tests snapshot its t=0
    /// contents to reconstruct what a recorded machine saw).
    pub fn bootstrap_registry(&self) -> SharedBootstrap {
        Rc::clone(&self.bootstrap)
    }

    /// Live directory peers with their positions and loads.
    pub fn directories(&self) -> Vec<(NodeId, DirPosition, usize)> {
        self.world
            .live_nodes()
            .filter_map(|(id, p)| {
                p.directory_position()
                    .map(|pos| (id, pos, p.directory_load().unwrap_or(0)))
            })
            .collect()
    }

    /// Live content peers of a given petal (website, locality).
    pub fn petal_members(&self, position: DirPosition) -> Vec<NodeId> {
        self.world
            .live_nodes()
            .filter(|(_, p)| {
                p.is_content()
                    && p.website() == position.website
                    && p.locality() == position.locality
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Drain reports accumulated so far (time-sliced consumers).
    pub fn drain_reports(&mut self) -> Vec<(Time, NodeId, FlowerReport)> {
        self.world.drain_reports()
    }

    fn finish_inner(mut self) -> RunResult {
        self.world.flush_trace_sinks();
        let perf = self.world.profiler().is_enabled().then(|| {
            collect_run_perf(
                &self.world,
                "Flower-CDN",
                &self.params,
                self.built_at,
                self.alloc_base,
            )
        });
        let peak = self.world.live_count();
        let messages = self.world.stats().delivered;
        let gauges = self
            .gauges
            .as_ref()
            .map(GaugeState::snapshot)
            .unwrap_or_default();
        let mut records = Vec::new();
        let mut replacements = 0u64;
        let mut splits = 0u64;
        let mut events: std::collections::BTreeMap<crate::peer::ProtocolEvent, u64> =
            std::collections::BTreeMap::new();
        for (_, _, report) in self.world.drain_reports() {
            match report {
                FlowerReport::Query(q) => records.push(q),
                FlowerReport::BecameDirectory { replacement, .. } => {
                    if replacement {
                        replacements += 1;
                    }
                }
                FlowerReport::PetalSplit { .. } => splits += 1,
                FlowerReport::Event(e) => *events.entry(e).or_default() += 1,
            }
        }
        RunResult::from_reports(
            records,
            replacements,
            splits,
            peak,
            events,
            messages,
            gauges,
            perf,
        )
    }
}

impl crate::driver::SimDriver for FlowerSim {
    fn params(&self) -> &SimParams {
        &self.params
    }

    /// Current virtual time.
    fn now(&self) -> Time {
        self.world.now()
    }

    /// Live peers right now.
    fn live_population(&self) -> usize {
        self.world.live_count()
    }

    /// Run to an intermediate point (tests and time-sliced experiments).
    fn run_until(&mut self, t: Time) {
        self.run_until_inner(t);
    }

    /// Schedule every fault of `scenario` into the run. Faults execute in
    /// the engine's control handler at their `at_ms`; auto-heal / revert
    /// tails (`heal-after`, `for`) are scheduled when the fault fires.
    /// Call before `run`/`run_until`; applying the same scenario to the
    /// same seed reproduces the run byte for byte.
    fn apply_scenario(&mut self, scenario: &chaos::Scenario) {
        for f in scenario.iter() {
            self.world
                .schedule_control(Time::from_millis(f.at_ms), Control::Chaos(f.action.clone()));
        }
    }

    /// Attach a structured trace sink to the underlying world. Because
    /// `new()` has already spawned the initial D-ring by the time a sink
    /// can be attached, the current world state is replayed into the sink
    /// first (one `NodeSpawn` per live node, then one `became_directory`
    /// per held position), so stateful sinks such as the invariant checker
    /// start from a consistent picture.
    fn add_trace_sink_boxed(&mut self, mut sink: Box<dyn TraceSink>) {
        let now = self.world.now();
        for (id, _) in self.world.live_nodes() {
            let locality = self.world.topology().locality(id);
            sink.event(now, &simnet::TraceEvent::NodeSpawn { node: id, locality });
        }
        for (id, pos, _) in self.directories() {
            let mut fields = crate::tags::pos_fields(pos);
            fields.push(("replacement", false.into()));
            fields.push(("replayed", true.into()));
            sink.event(
                now,
                &simnet::TraceEvent::Custom {
                    node: id,
                    name: crate::tags::BECAME_DIRECTORY,
                    fields,
                },
            );
        }
        self.world.add_trace_sink(sink);
    }

    /// Turn on periodic gauge sampling: every `period_ms` of virtual time
    /// the engine records live population, D-ring size, petal size
    /// statistics and per-class message rates. Returns a handle to the
    /// registry; [`RunResult::gauges`] carries the same series after
    /// `finish()`.
    fn enable_gauges(&mut self, period_ms: u64) -> Rc<RefCell<GaugeRegistry>> {
        let counts = ClassCountSink::new();
        self.world.add_trace_sink(Box::new(counts.clone()));
        let state = GaugeState::new(period_ms, counts);
        let registry = Rc::clone(&state.registry);
        self.world
            .schedule_control(next_sample_at(self.world.now(), period_ms), Control::Sample);
        self.gauges = Some(state);
        registry
    }

    /// Turn on the performance profiler: phase timers, per-class message
    /// accounting. [`RunResult::perf`] carries the cell after `finish()`.
    fn enable_profiling(&mut self) {
        self.world.profiler().enable();
    }

    /// Consume the simulation and aggregate everything.
    fn finish(self) -> RunResult {
        self.finish_inner()
    }
}

/// One gauge sample of a Flower-CDN world: population, D-ring size, petal
/// size statistics, and per-class delivery rates.
fn sample_flower_gauges(g: &mut GaugeState, world: &World<FlowerHost, Control>) {
    let at = world.now().as_millis();
    let mut pop = 0usize;
    let mut dirs = 0usize;
    let mut petal_total = 0usize;
    let mut petal_max = 0usize;
    let mut instance_max = 0u32;
    for (_, p) in world.live_nodes() {
        pop += 1;
        if p.is_directory() {
            dirs += 1;
            let load = p.directory_load().unwrap_or(0);
            petal_total += load;
            petal_max = petal_max.max(load);
            if let Some(pos) = p.directory_position() {
                instance_max = instance_max.max(pos.instance);
            }
        }
    }
    g.record("population", at, pop as f64);
    g.record("dring_size", at, dirs as f64);
    g.record("petal_size_max", at, petal_max as f64);
    g.record("instance_depth_max", at, f64::from(instance_max));
    let mean = if dirs == 0 {
        0.0
    } else {
        petal_total as f64 / dirs as f64
    };
    g.record("petal_size_mean", at, mean);
    g.sample_message_rates(at);
    g.sample_event_loop(at, world.queue_depth(), world.stats().events_processed());
}

/// Execute one scheduled fault against a Flower-CDN world. Victim
/// selection draws from the engine RNG; environment faults (partitions,
/// link faults, origin brownouts) go through [`chaos_driver`], which hands
/// back the auto-heal tail to schedule.
fn apply_flower_chaos(
    world: &mut World<FlowerHost, Control>,
    action: chaos::FaultAction,
    rng: &mut StdRng,
    bootstrap: &SharedBootstrap,
    catalog: &Catalog,
    params: &SimParams,
    dial: &OriginDial,
) {
    use chaos::FaultAction as FA;
    match action {
        FA::KillDirectories { website, count } => {
            let victims = chaos_driver::sample_nodes(
                world,
                count.map_or(usize::MAX, |c| c as usize),
                None,
                rng,
                |_, p| {
                    p.directory_position()
                        .is_some_and(|pos| website.is_none_or(|w| u32::from(pos.website.0) == w))
                },
            );
            for id in victims {
                world.fail(id);
                bootstrap.borrow_mut().remove(id);
            }
        }
        FA::KillRandom { count, locality } => {
            let loc = locality.map(|l| LocalityId(l as u16));
            let victims = chaos_driver::sample_nodes(world, count as usize, loc, rng, |_, _| true);
            for id in victims {
                world.fail(id);
                bootstrap.borrow_mut().remove(id);
            }
        }
        FA::LeaveWave { count } => {
            let leavers = chaos_driver::sample_nodes(world, count as usize, None, rng, |_, _| true);
            for id in leavers {
                world.leave(id);
                bootstrap.borrow_mut().remove(id);
            }
        }
        FA::JoinWave {
            count,
            website,
            lifetime_ms,
        } => {
            // A flash crowd: `count` fresh arrivals right now, drawn to one
            // website if set. Lifetimes follow the churn law unless pinned.
            for _ in 0..count {
                let ws = website
                    .map(|w| WebsiteId(w as u16))
                    .unwrap_or_else(|| catalog.assign_interest(rng));
                let lifetime = lifetime_ms
                    .unwrap_or_else(|| sample_exp(rng, params.mean_uptime_ms as f64).ceil() as u64);
                world.schedule_control(
                    world.now(),
                    Control::Spawn {
                        website: ws,
                        lifetime_ms: lifetime,
                        graceful: false,
                    },
                );
            }
        }
        env => {
            if let Some((after, follow_up)) = chaos_driver::apply_env_action(world, dial, &env) {
                world.schedule_control(world.now() + after, Control::Chaos(follow_up));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SimDriver;

    #[test]
    fn quick_run_produces_hits_and_keeps_population() {
        let mut params = SimParams::quick(150, 2 * 3_600_000);
        params.seed = 42;
        let mut sim = FlowerSim::new(params);
        assert_eq!(sim.live_population(), 10 * 6, "initial D-ring size");
        sim.run_until(Time::from_millis(2 * 3_600_000));
        let pop = sim.live_population();
        assert!(
            (75..=260).contains(&pop),
            "population {pop} should hover near 150"
        );
        assert!(sim.directory_count() > 0, "directories survive churn");
        let result = sim.finish();
        assert!(
            result.records.len() > 200,
            "expected a meaningful query stream, got {}",
            result.records.len()
        );
        assert!(
            result.stats.hit_ratio() > 0.05,
            "hit ratio {} should be non-trivial",
            result.stats.hit_ratio()
        );
        assert!(result.stats.mean_lookup_ms() > 0.0);
    }

    #[test]
    fn gauges_sample_population_and_message_rates() {
        let mut params = SimParams::quick(60, 30 * 60_000);
        params.seed = 9;
        let mut sim = FlowerSim::new(params);
        let live = sim.enable_gauges(5 * 60_000);
        sim.run_until(Time::from_millis(30 * 60_000));
        // The live handle already carries the series mid-run.
        let mid_len = live.borrow().series("population").map_or(0, |s| s.len());
        assert!(
            mid_len >= 5,
            "expected ≥5 samples over 30 min, got {mid_len}"
        );
        let result = sim.finish();
        let pop = result
            .gauges
            .series("population")
            .expect("population series");
        assert_eq!(pop.len(), mid_len);
        assert!(pop.iter().all(|&(_, v)| v > 0.0));
        assert!(result.gauges.series("dring_size").is_some());
        assert!(result.gauges.series("petal_size_mean").is_some());
        assert!(
            result.gauges.names().iter().any(|n| n.starts_with("rate/")),
            "expected per-class message-rate series, got {:?}",
            result.gauges.names()
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed: u64| {
            let mut params = SimParams::quick(80, 3_600_000);
            params.seed = seed;
            let r = FlowerSim::new(params).run();
            (
                r.records.len(),
                r.stats.hits,
                r.stats.queries,
                r.replacements,
            )
        };
        assert_eq!(run(7), run(7));
    }
}
