//! Bridges [`chaos`] scenarios into the experiment engines.
//!
//! Both [`FlowerSim`](crate::engine::FlowerSim) and
//! [`SquirrelSim`](crate::squirrel::SquirrelSim) accept a
//! [`chaos::Scenario`] via `apply_scenario`: every scheduled fault becomes
//! an engine control event, executed by the engine's own control handler so
//! that chaos shares the engine RNG stream and stays deterministic per
//! (seed, scenario). This module holds the engine-agnostic pieces: victim
//! sampling, the environment faults that act on the world itself
//! (partitions, link faults), and the origin "dial" that models origin
//! brownouts.

use std::cell::Cell;
use std::rc::Rc;

use chaos::FaultAction;
use rand::rngs::StdRng;
use rand::Rng;
use simnet::{LocalityId, Node, NodeId, World};
use workload::WebsiteId;

/// Shared origin-server health state, one per simulation.
///
/// The origin is modelled as a latency, not a peer, so a brownout is an
/// extra one-way delay added to every origin round trip while it lasts.
/// Peers hold this through their context (`PeerCtx` / `SqCtx`); the chaos
/// dispatch flips it from the engine side.
#[derive(Debug, Default)]
pub struct OriginDial {
    /// `(website filter, extra one-way ms)`; `None` = origins healthy.
    state: Cell<Option<(Option<u16>, u64)>>,
}

impl OriginDial {
    pub fn shared() -> Rc<OriginDial> {
        Rc::new(OriginDial::default())
    }

    /// Slow down the origin of `website` (or all origins) by `extra_ms`
    /// one-way.
    pub fn brownout(&self, website: Option<u16>, extra_ms: u64) {
        self.state.set(Some((website, extra_ms)));
    }

    /// Return all origins to nominal latency.
    pub fn restore(&self) {
        self.state.set(None);
    }

    /// Extra one-way latency currently afflicting `website`'s origin.
    pub fn extra_ms(&self, website: WebsiteId) -> u64 {
        match self.state.get() {
            Some((None, extra)) => extra,
            Some((Some(w), extra)) if w == website.0 => extra,
            _ => 0,
        }
    }
}

/// Sample up to `count` distinct live nodes, optionally restricted to one
/// locality, keeping only nodes `keep` accepts. Selection is a partial
/// Fisher–Yates over the (deterministically ordered) live set, so the same
/// engine RNG state always picks the same victims.
pub(crate) fn sample_nodes<N: Node, C>(
    world: &World<N, C>,
    count: usize,
    locality: Option<LocalityId>,
    rng: &mut StdRng,
    keep: impl Fn(NodeId, &N) -> bool,
) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = world
        .live_nodes()
        .filter(|&(id, n)| {
            locality.is_none_or(|l| world.topology().locality(id) == l) && keep(id, n)
        })
        .map(|(id, _)| id)
        .collect();
    if count < ids.len() {
        for i in 0..count {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        ids.truncate(count);
    }
    ids
}

/// Apply an *environment* fault — one that acts on the world's link
/// conditioner or the origin dial rather than on specific peers. Returns
/// the follow-up action the engine must schedule (auto-heal / auto-revert
/// tails), as `(delay_ms, action)`.
///
/// Panics if handed a peer-targeted action (`Kill*`, `*Wave`); those are
/// engine-specific and dispatched by the engines themselves.
pub(crate) fn apply_env_action<N: Node, C>(
    world: &mut World<N, C>,
    dial: &OriginDial,
    action: &FaultAction,
) -> Option<(u64, FaultAction)> {
    match action {
        FaultAction::Partition {
            locality,
            heal_after_ms,
        } => {
            world
                .conditioner_mut()
                .partition(LocalityId(*locality as u16));
            heal_after_ms.map(|after| {
                (
                    after,
                    FaultAction::Heal {
                        locality: Some(*locality),
                    },
                )
            })
        }
        FaultAction::Heal { locality } => {
            match locality {
                Some(l) => world.conditioner_mut().heal(LocalityId(*l as u16)),
                None => world.conditioner_mut().heal_all(),
            }
            None
        }
        FaultAction::LinkFault {
            loss,
            duplicate,
            jitter_ms,
            for_ms,
        } => {
            world
                .conditioner_mut()
                .set_faults(*loss, *duplicate, *jitter_ms);
            for_ms.map(|after| (after, FaultAction::ClearLinkFault))
        }
        FaultAction::ClearLinkFault => {
            world.conditioner_mut().clear_faults();
            None
        }
        FaultAction::OriginBrownout {
            website,
            extra_ms,
            for_ms,
        } => {
            dial.brownout(website.map(|w| w as u16), *extra_ms);
            for_ms.map(|after| (after, FaultAction::OriginRestore))
        }
        FaultAction::OriginRestore => {
            dial.restore();
            None
        }
        other => unreachable!("peer-targeted action reached env dispatch: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_dial_scopes_brownouts_by_website() {
        let dial = OriginDial::default();
        assert_eq!(dial.extra_ms(WebsiteId(0)), 0);
        dial.brownout(Some(2), 400);
        assert_eq!(dial.extra_ms(WebsiteId(2)), 400);
        assert_eq!(dial.extra_ms(WebsiteId(3)), 0);
        dial.brownout(None, 150);
        assert_eq!(dial.extra_ms(WebsiteId(3)), 150);
        dial.restore();
        assert_eq!(dial.extra_ms(WebsiteId(2)), 0);
    }
}
