//! Bridges [`chaos`] scenarios into the experiment engines.
//!
//! Both [`FlowerSim`](crate::engine::FlowerSim) and
//! [`SquirrelSim`](crate::squirrel::SquirrelSim) accept a
//! [`chaos::Scenario`] via `apply_scenario`: every scheduled fault becomes
//! an engine control event, executed by the engine's own control handler so
//! that chaos shares the engine RNG stream and stays deterministic per
//! (seed, scenario). This module holds the engine-agnostic pieces: victim
//! sampling, the environment faults that act on the world itself
//! (partitions, link faults), and the origin "dial" that models origin
//! brownouts.

use chaos::FaultAction;
use rand::rngs::StdRng;
use rand::Rng;
use simnet::{LocalityId, Node, NodeId, World};

/// The origin "dial" lives with the protocol cores (peers read it through
/// their context); re-exported here for the engines and for path
/// compatibility.
pub use flower_proto::origin::OriginDial;

/// Sample up to `count` distinct live nodes, optionally restricted to one
/// locality, keeping only nodes `keep` accepts. Selection is a partial
/// Fisher–Yates over the (deterministically ordered) live set, so the same
/// engine RNG state always picks the same victims.
pub(crate) fn sample_nodes<N: Node, C>(
    world: &World<N, C>,
    count: usize,
    locality: Option<LocalityId>,
    rng: &mut StdRng,
    keep: impl Fn(NodeId, &N) -> bool,
) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = world
        .live_nodes()
        .filter(|&(id, n)| {
            locality.is_none_or(|l| world.topology().locality(id) == l) && keep(id, n)
        })
        .map(|(id, _)| id)
        .collect();
    if count < ids.len() {
        for i in 0..count {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        ids.truncate(count);
    }
    ids
}

/// Apply an *environment* fault — one that acts on the world's link
/// conditioner or the origin dial rather than on specific peers. Returns
/// the follow-up action the engine must schedule (auto-heal / auto-revert
/// tails), as `(delay_ms, action)`.
///
/// Panics if handed a peer-targeted action (`Kill*`, `*Wave`); those are
/// engine-specific and dispatched by the engines themselves.
pub(crate) fn apply_env_action<N: Node, C>(
    world: &mut World<N, C>,
    dial: &OriginDial,
    action: &FaultAction,
) -> Option<(u64, FaultAction)> {
    match action {
        FaultAction::Partition {
            locality,
            heal_after_ms,
        } => {
            world
                .conditioner_mut()
                .partition(LocalityId(*locality as u16));
            heal_after_ms.map(|after| {
                (
                    after,
                    FaultAction::Heal {
                        locality: Some(*locality),
                    },
                )
            })
        }
        FaultAction::Heal { locality } => {
            match locality {
                Some(l) => world.conditioner_mut().heal(LocalityId(*l as u16)),
                None => world.conditioner_mut().heal_all(),
            }
            None
        }
        FaultAction::LinkFault {
            loss,
            duplicate,
            jitter_ms,
            for_ms,
        } => {
            world
                .conditioner_mut()
                .set_faults(*loss, *duplicate, *jitter_ms);
            for_ms.map(|after| (after, FaultAction::ClearLinkFault))
        }
        FaultAction::ClearLinkFault => {
            world.conditioner_mut().clear_faults();
            None
        }
        FaultAction::OriginBrownout {
            website,
            extra_ms,
            for_ms,
        } => {
            dial.brownout(website.map(|w| w as u16), *extra_ms);
            for_ms.map(|after| (after, FaultAction::OriginRestore))
        }
        FaultAction::OriginRestore => {
            dial.restore();
            None
        }
        other => unreachable!("peer-targeted action reached env dispatch: {other}"),
    }
}
