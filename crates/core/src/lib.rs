//! # flower-cdn — Flower-CDN and PetalUp-CDN, with the Squirrel baseline
//!
//! Reproduction of the system described in *"Leveraging P2P overlays for
//! Large-scale and Highly Robust Content Distribution and Search"*
//! (M. El Dick, VLDB 2009 PhD Workshop), which overviews Flower-CDN
//! (EDBT 2009), its scalable variant PetalUp-CDN, and their churn
//! maintenance protocols.
//!
//! The crate provides:
//!
//! * the **peer state machine** ([`peer::FlowerPeer`]) covering all roles —
//!   client, petal content peer, D-ring directory peer — with the full
//!   maintenance suite (gossip + dir-info, keepalive/push, position claims,
//!   PetalUp splits, graceful hand-over);
//! * **D-ring key management** ([`dring`]) over the `chord` crate;
//! * the **Squirrel baseline** ([`squirrel`]) — the decentralized P2P web
//!   cache of Iyer et al. (PODC 2002) in its directory and home-store
//!   flavours over a plain Chord of all peers;
//! * **experiment engines** ([`engine`], [`squirrel`]) driving both systems
//!   under the paper's §6.1 workload/churn on the `simnet` simulator;
//! * **experiment drivers** ([`experiments`]) regenerating every figure and
//!   table of §6.
//!
//! ```
//! use flower_cdn::{FlowerSim, SimDriver, SimParams};
//!
//! // A miniature run: 60 peers, 20 simulated minutes, same protocol stack
//! // as the paper-scale experiments (SimParams::paper_defaults).
//! let mut params = SimParams::quick(60, 20 * 60_000);
//! params.seed = 1;
//! params.catalog.websites = 4;
//! params.catalog.active_websites = 2;
//! params.catalog.objects_per_site = 50;
//! let result = FlowerSim::new(params).run();
//! assert!(result.stats.queries > 0);
//! assert!(result.stats.hit_ratio() >= 0.0 && result.stats.hit_ratio() <= 1.0);
//! ```

// Protocol modules live in `flower-proto` (sans-io state machines); they
// are re-exported here so `flower_cdn::msg::...`-style paths keep working.
pub use flower_proto::{
    api, bootstrap, config, directory, dirinfo, dring, maintenance, msg, peer, qid, query, store,
    tags,
};

pub mod chaos_driver;
pub mod driver;
pub mod engine;
pub mod experiments;
pub mod host;
pub mod invariants;
pub mod squirrel;

pub use bootstrap::{Bootstrap, SharedBootstrap};
pub use chaos::{FaultAction, Scenario};
pub use config::SimParams;
pub use directory::{DirectoryIndex, DirectorySnapshot};
pub use dirinfo::DirInfo;
pub use dring::DirPosition;
pub use driver::SimDriver;
pub use engine::{Control, FlowerSim, RunResult};
pub use experiments::{
    run_comparison, run_comparison_instrumented, run_system, run_system_with, shape_params,
    ComparisonRun, Instrumentation, System,
};
pub use flower_proto::{
    machine_rng, machine_seed, ApiCall, ApiResp, Env, Fx, Input, Machine, OriginDial, Output,
    ProviderKind, RoleKind,
};
pub use host::{SimHost, TapEntry, TapLog};
pub use invariants::InvariantChecker;
pub use msg::{FlowerMsg, FlowerTimer, RoutePayload, Summary};
pub use peer::{FlowerPeer, FlowerReport, PeerCtx, Role};
pub use qid::QueryId;
pub use squirrel::{SquirrelMode, SquirrelSim};
pub use store::{ContentStore, StorePolicy};
