//! Experiment drivers for §6: each paper artifact (Figure 3, Figure 4,
//! Figure 5, Table 2) is regenerated from comparison runs of Flower-CDN
//! and Squirrel under identical workload and churn laws.
//!
//! The drivers are scale-parametric: the bench harnesses call them with
//! [`SimParams::paper_defaults`] (24 h, P up to 5000); tests call them with
//! [`SimParams::quick`]. Runs for different systems/populations execute on
//! separate OS threads (each simulation is single-threaded and
//! self-contained).

use cdn_metrics::{fig4_lookup_edges, fig5_transfer_edges, Histogram, HitRatioSeries, QueryRecord};

use crate::config::SimParams;
use crate::driver::SimDriver;
use crate::engine::{FlowerSim, RunResult};
use crate::squirrel::{SquirrelMode, SquirrelSim};

/// Which system a result row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum System {
    FlowerCdn,
    Squirrel,
}

impl System {
    pub fn label(self) -> &'static str {
        match self {
            System::FlowerCdn => "Flower-CDN",
            System::Squirrel => "Squirrel",
        }
    }
}

/// Build the simulation for `system`, let `customize` attach sinks /
/// gauges / scenarios through the [`SimDriver`] surface, run it to the
/// horizon and collect the results. This is the single entry point every
/// harness and the sweep orchestrator funnel through — no caller needs
/// the concrete sim types.
pub fn run_system_with(
    system: System,
    params: SimParams,
    customize: impl FnOnce(&mut dyn SimDriver),
) -> RunResult {
    match system {
        System::FlowerCdn => {
            let mut sim = FlowerSim::new(params);
            customize(&mut sim);
            sim.run()
        }
        System::Squirrel => {
            let mut sim = SquirrelSim::new(params, SquirrelMode::Directory);
            customize(&mut sim);
            sim.run()
        }
    }
}

/// [`run_system_with`] without customization.
pub fn run_system(system: System, params: SimParams) -> RunResult {
    run_system_with(system, params, |_| {})
}

/// Both systems run under the same parameters.
pub struct ComparisonRun {
    pub params: SimParams,
    pub flower: RunResult,
    pub squirrel: RunResult,
}

/// Observability knobs for comparison runs — what the bench harness's
/// `--trace-out` and `--gauges` flags map to.
#[derive(Debug, Clone, Default)]
pub struct Instrumentation {
    /// Stream every trace event of the Flower-CDN run as JSON lines to
    /// this path; the Squirrel run gets a `.squirrel.jsonl` sibling.
    pub trace_out: Option<std::path::PathBuf>,
    /// Sample gauge series (population, D-ring size, petal sizes, message
    /// rates) with this period, landing in [`RunResult::gauges`].
    pub gauge_period_ms: Option<u64>,
    /// A fault schedule (`--scenario FILE`) applied identically to both
    /// systems before the run starts.
    pub scenario: Option<chaos::Scenario>,
    /// Enable the performance profiler (phase timers, per-class message
    /// accounting); the run's [`RunResult::perf`] cell is filled.
    pub profile: bool,
}

impl Instrumentation {
    /// Where this invocation's trace stream for `system` lands: the
    /// Flower-CDN run gets `trace_out` itself, the Squirrel run a
    /// `.squirrel.jsonl` sibling.
    pub fn trace_path(&self, system: System) -> Option<std::path::PathBuf> {
        self.trace_out.as_ref().map(|path| match system {
            System::FlowerCdn => path.clone(),
            System::Squirrel => path.with_extension("squirrel.jsonl"),
        })
    }

    /// Attach everything this instrumentation asks for to one simulation,
    /// through the [`SimDriver`] surface (system-agnostic). Order —
    /// profiler, trace sink, gauges, scenario — is part of the determinism
    /// contract: every code path that sets up a run applies in this order.
    /// (The profiler goes first so it observes everything the rest emits;
    /// it never affects the virtual-time schedule.)
    pub fn apply(&self, sim: &mut dyn SimDriver, system: System) {
        if self.profile {
            sim.enable_profiling();
        }
        if let Some(path) = self.trace_path(system) {
            let w = cdn_metrics::JsonlTraceWriter::create(path).expect("create trace file");
            sim.add_trace_sink_boxed(Box::new(w));
        }
        if let Some(period) = self.gauge_period_ms {
            sim.enable_gauges(period);
        }
        if let Some(sc) = &self.scenario {
            sim.apply_scenario(sc);
        }
    }
}

/// Run Flower-CDN and Squirrel side by side (two OS threads).
pub fn run_comparison(params: SimParams) -> ComparisonRun {
    run_comparison_instrumented(params, Instrumentation::default())
}

/// [`run_comparison`] with tracing and gauge sampling attached to both
/// systems as requested.
pub fn run_comparison_instrumented(params: SimParams, inst: Instrumentation) -> ComparisonRun {
    let (flower, squirrel) = std::thread::scope(|s| {
        let pf = params.clone();
        let ps = params.clone();
        let inst_f = inst.clone();
        let inst_s = inst;
        let hf = s.spawn(move || {
            run_system_with(System::FlowerCdn, pf, |sim| {
                inst_f.apply(sim, System::FlowerCdn)
            })
        });
        let hs = s.spawn(move || {
            run_system_with(System::Squirrel, ps, |sim| {
                inst_s.apply(sim, System::Squirrel)
            })
        });
        (
            hf.join().expect("flower run"),
            hs.join().expect("squirrel run"),
        )
    });
    ComparisonRun {
        params,
        flower,
        squirrel,
    }
}

/// Figure 3: cumulative hit ratio over time. Returns `(hours, ratio)`
/// points, one per bucket.
pub fn hit_ratio_series(records: &[QueryRecord], bucket_ms: u64) -> Vec<(f64, f64)> {
    let mut s = HitRatioSeries::new(bucket_ms);
    for r in records {
        s.record(r);
    }
    s.cumulative()
        .into_iter()
        .map(|(ms, ratio)| (ms as f64 / 3_600_000.0, ratio))
        .collect()
}

/// Figure 4: lookup latency distribution over the paper's bucket edges.
pub fn lookup_histogram(records: &[QueryRecord]) -> Histogram {
    let mut h = Histogram::new(fig4_lookup_edges());
    for r in records {
        h.record(r.lookup_ms);
    }
    h
}

/// Figure 5: transfer distance distribution over the paper's bucket edges.
pub fn transfer_histogram(records: &[QueryRecord]) -> Histogram {
    let mut h = Histogram::new(fig5_transfer_edges());
    for r in records {
        h.record(r.transfer_ms);
    }
    h
}

/// Maintenance-ablation variant knobs (experiment A2 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceVariant {
    /// The full §5 protocol suite.
    Full,
    /// Push messages suppressed: replacement directories can only rebuild
    /// from keepalives and redirects (no content re-registration).
    NoPush,
    /// Gossip suppressed: no dir-info dissemination, no summary spread —
    /// queries resolve only via the directory.
    NoGossip,
}

impl MaintenanceVariant {
    /// Rewrite `params` so the variant's mechanism can never fire. The
    /// bench binaries use this to express variants as plain sweep cells.
    pub fn apply(self, params: &mut SimParams) {
        match self {
            MaintenanceVariant::Full => {}
            MaintenanceVariant::NoPush => {
                // A threshold above 1.0 can never be crossed: pushes stop.
                params.push_threshold = f64::INFINITY;
            }
            MaintenanceVariant::NoGossip => {
                // Gossip periods beyond the horizon never fire.
                params.gossip_period_ms = params.horizon_ms * 10;
            }
        }
    }
}

/// Run Flower-CDN with parts of the maintenance machinery disabled, to
/// quantify what each contributes (the paper argues §5 is what keeps the
/// hit ratio climbing under churn; this measures it).
pub fn run_maintenance_variant(params: SimParams, variant: MaintenanceVariant) -> RunResult {
    let mut params = params;
    variant.apply(&mut params);
    FlowerSim::new(params).run()
}

/// A reduced-scale configuration that preserves the *ratios* that drive the
/// paper's comparison: ~10 queries per session (query period = uptime/10),
/// petals of ~5+ concurrent members (P·active/(|W|·k)), several uptimes per
/// horizon, and an object space a petal can only partially cover.
pub fn shape_params(population: usize, seed: u64) -> SimParams {
    let mut p = SimParams::paper_defaults(population);
    p.seed = seed;
    p.horizon_ms = 4 * 3_600_000; // 4 h
    p.mean_uptime_ms = 40 * 60_000; // 40 min → 6 lifetimes per horizon
    p.query_period_ms = 4 * 60_000; // uptime/10, as in the paper
    p.gossip_period_ms = 40 * 60_000; // = uptime, as in the paper
    p.catalog.websites = 20;
    p.catalog.active_websites = 4;
    p.catalog.objects_per_site = 300;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params(seed: u64) -> SimParams {
        let mut p = SimParams::quick(150, 2 * 3_600_000);
        p.seed = seed;
        p
    }

    /// A fast configuration that still preserves the regime where the
    /// paper's comparison lives: dense petals (~15 concurrent members) and
    /// heavy churn (uptime = horizon/6), so the locality-aware directory
    /// machinery has something to win with.
    fn shape_test_params(seed: u64) -> SimParams {
        let mut p = SimParams::quick(240, 2 * 3_600_000);
        p.seed = seed;
        p.mean_uptime_ms = p.horizon_ms / 6;
        p.query_period_ms = p.mean_uptime_ms / 12;
        p.gossip_period_ms = p.mean_uptime_ms;
        p.catalog.websites = 6;
        p.catalog.active_websites = 3;
        p.catalog.objects_per_site = 200;
        p
    }

    #[test]
    fn comparison_shape_matches_paper() {
        // The paper's headline (§6.2): under heavy churn Flower-CDN ends
        // with a higher hit ratio and much lower lookup latency than
        // Squirrel. Run at a reduced but regime-preserving scale.
        let run = run_comparison(shape_test_params(1234));
        let f = &run.flower.stats;
        let s = &run.squirrel.stats;
        assert!(
            f.hit_ratio() > s.hit_ratio(),
            "flower {:.3} should beat squirrel {:.3}",
            f.hit_ratio(),
            s.hit_ratio()
        );
        assert!(
            f.mean_lookup_ms() * 1.5 < s.mean_lookup_ms(),
            "flower lookup {:.0} ms should be well below squirrel {:.0} ms \
             (the factor widens with scale; see EXPERIMENTS.md)",
            f.mean_lookup_ms(),
            s.mean_lookup_ms()
        );
        assert!(
            f.mean_transfer_ms() < s.mean_transfer_ms(),
            "flower transfer {:.0} should undercut squirrel {:.0}",
            f.mean_transfer_ms(),
            s.mean_transfer_ms()
        );
    }

    #[test]
    fn histograms_cover_all_records() {
        let run = run_comparison(quick_params(99));
        let h = lookup_histogram(&run.flower.records);
        assert_eq!(h.total() as usize, run.flower.records.len());
        let t = transfer_histogram(&run.squirrel.records);
        assert_eq!(t.total() as usize, run.squirrel.records.len());
        let series = hit_ratio_series(&run.flower.records, 600_000);
        assert!(!series.is_empty());
        let last = series.last().unwrap().1;
        assert!((last - run.flower.stats.hit_ratio()).abs() < 1e-9);
    }
}
