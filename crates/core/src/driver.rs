//! The unified simulation-driver surface.
//!
//! [`FlowerSim`](crate::engine::FlowerSim) and
//! [`SquirrelSim`](crate::squirrel::SquirrelSim) grew the same driver
//! methods twice — run, instrument, inject faults, collect results. The
//! [`SimDriver`] trait is that surface extracted once, so experiment
//! drivers, the bench binaries and the `sweep` orchestrator can be written
//! against *a simulation* rather than against each system separately.
//!
//! The trait is object-safe for everything a harness needs mid-setup
//! (`&mut dyn SimDriver` works for attaching sinks, gauges and scenarios);
//! only the consuming `finish`/`run` and the sugar `add_trace_sink` are
//! `Self: Sized`.

use std::cell::RefCell;
use std::rc::Rc;

use cdn_metrics::GaugeRegistry;
use simnet::{Time, TraceSink};

use crate::config::SimParams;
use crate::engine::RunResult;

/// Common driver surface of a single-threaded deterministic simulation.
///
/// A driver is built from [`SimParams`] (plus system-specific extras),
/// optionally customized — trace sinks, gauges, a fault scenario — and
/// then run to its horizon. The contract every implementation upholds:
///
/// * **Determinism** — the same `(params, scenario, sink/gauge set)`
///   reproduces the same [`RunResult`] byte for byte, on any thread.
/// * **Self-containment** — the simulation shares nothing mutable with
///   other instances; building and running it wholly inside one worker
///   thread is always safe.
/// * **Setup order** — customizations apply before `run`/`run_until`
///   advances time past the first event.
pub trait SimDriver {
    /// The parameters this simulation was built from.
    fn params(&self) -> &SimParams;

    /// Current virtual time.
    fn now(&self) -> Time;

    /// Live peers right now.
    fn live_population(&self) -> usize;

    /// Advance virtual time to `t` (tests and time-sliced experiments).
    fn run_until(&mut self, t: Time);

    /// Schedule every fault of `scenario` into the run. Applying the same
    /// scenario to the same seed reproduces the run byte for byte.
    fn apply_scenario(&mut self, scenario: &chaos::Scenario);

    /// Attach a structured trace sink. Already-materialized world state
    /// (the t=0 population, held directory positions) is replayed into the
    /// sink first so stateful sinks start from a consistent picture.
    fn add_trace_sink_boxed(&mut self, sink: Box<dyn TraceSink>);

    /// Turn on periodic gauge sampling with this period of virtual time.
    /// Samples land on exact multiples of the period, so gauge rows align
    /// across seeds and systems. Returns a live handle to the registry;
    /// [`RunResult::gauges`] carries the same series after `finish`.
    fn enable_gauges(&mut self, period_ms: u64) -> Rc<RefCell<GaugeRegistry>>;

    /// Turn on the performance profiler: hierarchical phase timers on the
    /// event loop and protocol hot spots, plus per-message-class count and
    /// wire-byte accounting. Costs nothing until called.
    /// [`RunResult::perf`] carries the measured cell after `finish`.
    fn enable_profiling(&mut self);

    /// Consume the simulation and aggregate everything it produced.
    fn finish(self) -> RunResult
    where
        Self: Sized;

    /// Run to the configured horizon and collect results.
    fn run(mut self) -> RunResult
    where
        Self: Sized,
    {
        let horizon = Time::from_millis(self.params().horizon_ms);
        self.run_until(horizon);
        self.finish()
    }

    /// Sugar over [`SimDriver::add_trace_sink_boxed`] for concrete sims.
    fn add_trace_sink(&mut self, sink: impl TraceSink + 'static)
    where
        Self: Sized,
    {
        self.add_trace_sink_boxed(Box::new(sink));
    }
}
