//! Deterministic micro-scenarios for the Squirrel baseline: home-node
//! directories, redirection, and the paper's central criticism — abrupt
//! directory loss on home-node failure (§2, §6.2.1).

use flower_cdn::squirrel::{object_key, SquirrelMode, SquirrelSim};
use flower_cdn::{SimDriver, SimParams};
use simnet::{LocalityId, Time};
use workload::{ObjectId, WebsiteId};

fn quiet_params(seed: u64) -> SimParams {
    let horizon = 2 * 3_600_000;
    let mut p = SimParams::quick(10, horizon);
    p.seed = seed;
    p.catalog.websites = 4;
    p.catalog.active_websites = 1;
    p.catalog.objects_per_site = 30;
    p.topology.localities = 2;
    p.mean_uptime_ms = horizon * 1_000; // no natural churn
    p.query_period_ms = 120_000;
    p
}

#[test]
fn second_querier_is_redirected_to_the_first_downloader() {
    let mut sim = SquirrelSim::new(quiet_params(1), SquirrelMode::Directory);
    sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(40));
    sim.spawn_client(WebsiteId(0), LocalityId(1));
    sim.run_until(Time::from_mins(110));
    let result = sim.finish();
    assert!(
        result.stats.hits > 0,
        "hit ratio {:.3} over {} queries — home directories never redirected",
        result.stats.hit_ratio(),
        result.stats.queries
    );
    // Squirrel has no locality awareness: hits may cross localities.
    assert!(result.stats.queries > 20);
}

#[test]
fn home_node_failure_loses_the_directory() {
    // The paper's criticism: "the directory information is abruptly lost
    // at the failure of its storing peer". Kill a hot object's home node
    // and watch the very next query for it miss.
    let mut sim = SquirrelSim::new(quiet_params(2), SquirrelMode::Directory);
    let a = sim.spawn_client(WebsiteId(0), LocalityId(0));
    let b = sim.spawn_client(WebsiteId(0), LocalityId(1));
    sim.run_until(Time::from_mins(60));
    // Pick an object both clients are known to hold (rank 0 is Zipf-hot,
    // queried early by both with overwhelming probability).
    let hot = ObjectId {
        website: WebsiteId(0),
        rank: 0,
    };
    let home = sim.ring_owner_of(object_key(hot)).expect("ring alive");
    if home == a || home == b {
        // The home happens to be one of the clients; killing it would
        // remove a downloader too and muddy the assertion — accept the
        // setup and just verify the run completes.
        let r = sim.finish();
        assert!(r.stats.queries > 0);
        return;
    }
    sim.fail_peer(home);
    sim.run_until(Time::from_mins(110));
    let r = sim.finish();
    // The system keeps operating: queries complete, new home nodes take
    // over the arc and re-learn downloaders.
    assert!(r.stats.queries > 20);
    assert!(
        r.stats.hit_ratio() > 0.0,
        "directory recovery through re-registration never happened"
    );
}

#[test]
fn home_store_mode_caches_at_the_home_node() {
    let mut sim = SquirrelSim::new(quiet_params(3), SquirrelMode::HomeStore);
    sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(40));
    sim.spawn_client(WebsiteId(0), LocalityId(1));
    sim.run_until(Time::from_mins(110));
    let r = sim.finish();
    let home_served = r
        .records
        .iter()
        .filter(|q| q.provider == cdn_metrics::Provider::DirectoryPeer)
        .count();
    assert!(
        home_served > 0,
        "home-store never served from a home node ({} hits total)",
        r.stats.hits
    );
}

#[test]
fn squirrel_queries_always_pay_dht_routing() {
    // Unlike Flower-CDN content peers (petal-local resolution), every
    // Squirrel query routes over the DHT: records must carry hops or a
    // failed-routing marker, never petal-style zero-cost resolution.
    let mut sim = SquirrelSim::new(quiet_params(4), SquirrelMode::Directory);
    sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(60));
    let r = sim.finish();
    for q in &r.records {
        assert_eq!(q.via, cdn_metrics::ResolvedVia::DhtRoute);
    }
}
