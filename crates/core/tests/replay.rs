//! Deterministic replay: a sans-io machine is a pure function of its
//! construction blueprint, its host RNG and its input sequence.
//!
//! The simulator runs a scripted scenario with a **tapped** client: the
//! [`SimHost`] tap records every `(now, input, outputs)` exchange the
//! machine performs, including a directory failure and the client's §5.2.2
//! replacement take-over. A scripted harness then rebuilds the machine
//! from scratch — same blueprint, same `machine_rng` derivation, a
//! reconstructed bootstrap registry — and feeds it the recorded inputs at
//! the recorded times. Every output stream must match the recording
//! byte-for-byte (compared via `Debug`).
//!
//! This is the property that lets one protocol core run under both the
//! simulator and the networked node: nothing outside (inputs, env, the
//! shared registry script) influences what the machine emits.

use std::rc::Rc;

use flower_cdn::{
    machine_rng, Bootstrap, Env, FlowerPeer, FlowerReport, FlowerSim, Machine, Output, PeerCtx,
    SimDriver, SimParams, TapEntry, TapLog,
};
use simnet::{LocalityId, Time};
use workload::WebsiteId;

/// One website under test anchored by a 4-member D-ring, one locality, no
/// Poisson arrivals and no natural deaths: every event in the run is
/// either scripted by the test or emitted by the machines themselves.
fn scripted_params(seed: u64) -> SimParams {
    let horizon = 2 * 3_600_000;
    let mut p = SimParams::quick(10, horizon);
    p.seed = seed;
    p.population = 0; // arrival rate 0: no unscripted peers
    p.catalog.websites = 4;
    p.catalog.active_websites = 1;
    p.catalog.objects_per_site = 40;
    p.topology.localities = 1;
    p.mean_uptime_ms = horizon * 1_000;
    p.query_period_ms = 120_000;
    p.gossip_period_ms = 600_000;
    p
}

/// Debug-render an exchange's outputs (the byte stream under comparison).
fn render(outputs: &[Output<FlowerPeer>]) -> String {
    format!("{outputs:#?}")
}

#[test]
fn tapped_client_replays_byte_identically() {
    let seed = 0xD1CE;
    let mut sim = FlowerSim::new(scripted_params(seed));

    // Snapshot the rendezvous registry before anything runs: the replay
    // registry must present the same members in the same order.
    let initial_members = sim.bootstrap_registry().borrow().members().to_vec();
    assert_eq!(initial_members.len(), 4, "one directory per website");

    let log: TapLog<FlowerPeer> = TapLog::default();
    let c = sim.spawn_client_tapped(WebsiteId(0), LocalityId(0), Rc::clone(&log));

    // Phase 1: join the petal, issue queries, gossip, keepalive.
    let fail_at = Time::from_mins(30);
    sim.run_until(fail_at);
    let victim = sim
        .directories()
        .into_iter()
        .find(|(_, p, _)| p.website == WebsiteId(0))
        .map(|(id, _, _)| id)
        .expect("website 0 directory alive");
    assert_ne!(victim, c);

    // Phase 2: kill the directory. The engine prunes it from the shared
    // registry (rendezvous liveness checking) — the one external mutation
    // the replay harness must mirror.
    sim.fail_peer(victim);
    sim.run_until(Time::from_mins(75));

    // The client was the petal's only content peer, so it must be the
    // replacement directory — the recording covers the whole recovery arc.
    let peer = sim.world().node(c).expect("client alive");
    assert!(
        peer.is_directory(),
        "sole content peer must take over the failed directory"
    );
    let blueprint: PeerCtx = peer.peer_ctx().clone();
    let entries = log.borrow();
    assert!(
        entries.len() > 20,
        "recording too short to be meaningful: {} exchanges",
        entries.len()
    );
    let recorded_replacement = entries.iter().any(|e| {
        e.outputs.iter().any(|o| {
            matches!(
                o,
                Output::Report(FlowerReport::BecameDirectory {
                    replacement: true,
                    ..
                })
            )
        })
    });
    assert!(
        recorded_replacement,
        "the tap must have recorded the §5.2.2 take-over"
    );

    // --- Scripted replay: fresh machine, fresh RNG, fresh registry. ---
    let registry = Bootstrap::shared();
    for m in &initial_members {
        registry.borrow_mut().add(*m);
    }
    let pcx = PeerCtx {
        bootstrap: Rc::clone(&registry),
        ..blueprint
    };
    let mut machine = FlowerPeer::new_client(pcx, c, LocalityId(0));
    let mut rng = machine_rng(seed, c);

    let mut fail_applied = false;
    for (i, e) in entries.iter().enumerate() {
        let TapEntry {
            now,
            input,
            outputs,
        } = e;
        // Mirror the engine's registry pruning at the scripted failure
        // point (all phase-1 events fire at or before `fail_at`).
        if !fail_applied && now.as_millis() > fail_at.as_millis() {
            registry.borrow_mut().remove(victim);
            fail_applied = true;
        }
        let env = Env {
            now: *now,
            me: c,
            locality: LocalityId(0),
            rng: &mut rng,
            tracing: false,
        };
        let replayed = machine.handle(env, input.clone());
        assert_eq!(
            render(&replayed),
            render(outputs),
            "exchange {i} of {} diverged (t = {} ms, input = {:?})",
            entries.len(),
            now.as_millis(),
            input
        );
    }
    assert!(fail_applied, "replay never crossed the failure point");
    assert!(
        machine.is_directory(),
        "replayed machine must end in the recorded role"
    );
}
