//! Manual calibration harness (run with `--ignored --nocapture`): prints
//! the three §6 metrics for both systems at a reduced scale so the shape
//! can be compared against the paper during development.

use cdn_metrics::{QueryRecord, ResolvedVia};
use flower_cdn::experiments::{run_comparison, shape_params};
use flower_cdn::SimDriver;

fn breakdown(records: &[QueryRecord]) {
    for via in [
        ResolvedVia::LocalView,
        ResolvedVia::Directory,
        ResolvedVia::DhtRoute,
        ResolvedVia::DirectOrigin,
    ] {
        let rs: Vec<&QueryRecord> = records.iter().filter(|r| r.via == via).collect();
        if rs.is_empty() {
            continue;
        }
        let hits = rs.iter().filter(|r| r.is_hit()).count();
        let mean_lookup: f64 = rs.iter().map(|r| r.lookup_ms as f64).sum::<f64>() / rs.len() as f64;
        let mut lookups: Vec<u64> = rs.iter().map(|r| r.lookup_ms).collect();
        lookups.sort_unstable();
        let p95 = lookups[lookups.len() * 95 / 100];
        println!(
            "    {:?}: n={} hit={:.3} lookup_mean={:.0} p95={}",
            via,
            rs.len(),
            hits as f64 / rs.len() as f64,
            mean_lookup,
            p95
        );
    }
    // hourly cumulative hit
    let series = flower_cdn::experiments::hit_ratio_series(records, 3_600_000);
    let pts: Vec<String> = series
        .iter()
        .map(|(h, r)| format!("{h:.0}h={r:.2}"))
        .collect();
    println!("    cumulative: {}", pts.join(" "));
}

#[test]
#[ignore = "manual calibration: cargo test -p flower-cdn --release --test calibration -- --ignored --nocapture"]
fn print_comparison_shape() {
    for &pop in &[600usize] {
        let run = run_comparison(shape_params(pop, 7));
        for (name, r) in [("Flower-CDN", &run.flower), ("Squirrel", &run.squirrel)] {
            let s = &r.stats;
            println!(
                "P={pop} {name:<11} queries={:<6} hit={:.3} lookup={:>6.0}ms transfer={:>5.0}ms hops={:.1} repl={} splits={}",
                s.queries,
                s.hit_ratio(),
                s.mean_lookup_ms(),
                s.mean_transfer_ms(),
                s.mean_dht_hops(),
                r.replacements,
                r.splits,
            );
            breakdown(&r.records);
            println!("    events: {:?}", r.events);
        }
    }
}

#[test]
#[ignore = "manual calibration"]
fn print_no_churn_baseline() {
    // Low churn: uptime = horizon → arrivals flow in but most peers
    // survive to the end. Isolates protocol machinery from heavy churn.
    let mut p = shape_params(600, 5);
    p.mean_uptime_ms = p.horizon_ms;
    let run = run_comparison(p);
    for (name, r) in [("Flower-CDN", &run.flower), ("Squirrel", &run.squirrel)] {
        let s = &r.stats;
        println!(
            "static {name:<11} queries={:<6} hit={:.3} lookup={:>6.0}ms transfer={:>5.0}ms hops={:.1}",
            s.queries,
            s.hit_ratio(),
            s.mean_lookup_ms(),
            s.mean_transfer_ms(),
            s.mean_dht_hops(),
        );
        breakdown(&r.records);
        println!("    events: {:?}", r.events);
    }
}

#[test]
#[ignore = "slow: population trajectory at paper scale"]
fn print_population_trajectory() {
    let mut p = flower_cdn::SimParams::paper_defaults(2000);
    p.seed = 99;
    p.horizon_ms = 6 * 3_600_000;
    let mut flower = flower_cdn::FlowerSim::new(p.clone());
    let mut squirrel = flower_cdn::SquirrelSim::new(p.clone(), flower_cdn::SquirrelMode::Directory);
    for hour in 1..=6u64 {
        let t = simnet::Time::from_hours(hour);
        flower.run_until(t);
        squirrel.run_until(t);
        let joined = squirrel
            .world()
            .live_nodes()
            .filter(|(_, n)| n.is_joined())
            .count();
        let (ok_succ, stranded, predless) = squirrel.ring_health();
        println!(
            "hour {hour}: flower pop={} dirs={} | squirrel pop={} joined={} succ_ok={:.2} stranded={} predless={}",
            flower.live_population(),
            flower.directory_count(),
            squirrel.live_population(),
            joined,
            ok_succ,
            stranded,
            predless,
        );
    }
}

#[test]
#[ignore = "slow: full paper-scale row of Table 2"]
fn print_paper_scale_p2000() {
    let mut p = flower_cdn::SimParams::paper_defaults(2000);
    p.seed = 99;
    let run = run_comparison(p);
    for (name, r) in [("Flower-CDN", &run.flower), ("Squirrel", &run.squirrel)] {
        let s = &r.stats;
        println!(
            "P=2000 {name:<11} queries={:<6} hit={:.3} lookup={:>6.0}ms transfer={:>5.0}ms hops={:.1} repl={} splits={}",
            s.queries, s.hit_ratio(), s.mean_lookup_ms(), s.mean_transfer_ms(),
            s.mean_dht_hops(), r.replacements, r.splits,
        );
        breakdown(&r.records);
        println!("    events: {:?}", r.events);
    }
}

#[test]
#[ignore = "manual trace"]
fn trace_squirrel_hot_object() {
    let mut p = shape_params(600, 21);
    p.horizon_ms = 2 * 3_600_000;
    let r = flower_cdn::SquirrelSim::new(p, flower_cdn::SquirrelMode::Directory).run();
    println!("hit={:.3}", r.stats.hit_ratio());
}
