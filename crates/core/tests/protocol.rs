//! Deterministic micro-scenarios driving the Flower-CDN peer protocol
//! through the engine with manual spawns and a churn-free background —
//! each test isolates one §3–§5 mechanism.

use flower_cdn::{DirPosition, FlowerSim, InvariantChecker, SimDriver, SimParams};
use simnet::{LivenessChecker, LocalityId, Time};
use workload::WebsiteId;

/// One website, one locality, no natural churn: a single petal under a
/// single initial directory, fully under test control.
fn single_petal_params(seed: u64) -> SimParams {
    let horizon = 2 * 3_600_000;
    let mut p = SimParams::quick(10, horizon);
    p.seed = seed;
    // Four websites: website 0 is the petal under test; the other three
    // directories anchor D-ring so repair protocols always have live ring
    // members / bootstraps to route through, and the ring survives single
    // deaths (in the paper's setting there are 600 members).
    p.catalog.websites = 4;
    p.catalog.active_websites = 1;
    p.catalog.objects_per_site = 40;
    p.topology.localities = 1;
    // Population target tiny and uptime enormous: the Poisson arrival
    // stream is negligible and nobody dies on its own.
    p.mean_uptime_ms = horizon * 1_000;
    p.query_period_ms = 120_000;
    p.gossip_period_ms = 600_000;
    p
}

fn petal() -> DirPosition {
    DirPosition::base(WebsiteId(0), LocalityId(0))
}

#[test]
fn client_joins_petal_through_dring_and_gets_indexed() {
    let mut sim = FlowerSim::new(single_petal_params(1));
    assert_eq!(sim.directory_count(), 4, "one directory per website");
    let c = sim.spawn_client(WebsiteId(0), LocalityId(0));
    // First query: routed over D-ring, misses (empty petal), fetched from
    // the origin; the client joins the petal as a content peer.
    sim.run_until(Time::from_mins(10));
    let peer = sim.world().node(c).expect("client alive");
    assert!(peer.is_content(), "client must have joined the petal");
    assert!(peer.store_len() >= 1, "client stores what it fetched");
    assert!(
        peer.dir_info().is_some(),
        "content peers remember their directory (§5.1)"
    );
    // The directory indexed the newcomer and its content.
    let members = sim.petal_members(petal());
    assert!(members.contains(&c));
    let dir0 = sim
        .directories()
        .into_iter()
        .find(|(_, p, _)| p.chord_id() == petal().chord_id())
        .expect("website 0's directory is alive");
    assert!(dir0.2 >= 1, "directory view includes the client");
}

#[test]
fn second_client_is_served_by_the_first() {
    let mut sim = FlowerSim::new(single_petal_params(2));
    let _a = sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(30));
    let b = sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(90));
    let _ = b;
    let result = sim.finish();
    assert!(
        result.stats.hits > 0,
        "with two clients of one website, petal hits must occur \
         (hit ratio {:.3} over {} queries)",
        result.stats.hit_ratio(),
        result.stats.queries
    );
    // Petal hits are locality-local: transfer distance well under the
    // inter-locality range.
    let petal_hits: Vec<_> = result
        .records
        .iter()
        .filter(|r| r.is_hit() && r.via == cdn_metrics::ResolvedVia::Directory)
        .collect();
    for r in &petal_hits {
        assert!(
            r.transfer_ms <= 150,
            "petal providers must be close: {} ms",
            r.transfer_ms
        );
    }
}

#[test]
fn directory_failure_is_repaired_by_petal_members() {
    let mut sim = FlowerSim::new(single_petal_params(3));
    for _ in 0..4 {
        sim.spawn_client(WebsiteId(0), LocalityId(0));
    }
    sim.run_until(Time::from_mins(30));
    let dir_of = |sim: &FlowerSim| {
        sim.directories()
            .into_iter()
            .find(|(_, p, _)| p.chord_id() == petal().chord_id())
    };
    let (victim, _, load_before) = dir_of(&sim).expect("petal directory alive");
    assert!(load_before >= 4);
    sim.fail_peer(victim);
    // Claims fire on the next keepalive/push/query contact; give a few
    // query periods.
    sim.run_until(Time::from_mins(60));
    let (heir, _, _) = dir_of(&sim).expect("position re-occupied");
    assert_ne!(heir, victim);
    // Index rebuild (§5.2.2): survivors re-register via claim-denial full
    // pushes, so the new index re-learns them.
    sim.run_until(Time::from_mins(90));
    let (_, _, load_after) = dir_of(&sim).expect("position still held");
    assert!(
        load_after >= 2,
        "rebuilt index knows only {load_after} peers"
    );
    let result = sim.finish();
    assert!(result.replacements >= 1);
}

#[test]
fn invariants_hold_under_directory_churn() {
    // Same scenario as `directory_failure_is_repaired_by_petal_members`,
    // but validated from the trace: the invariant checker replays every
    // scheduler and protocol event and asserts directory uniqueness,
    // query termination and no delivery-to-dead.
    let mut sim = FlowerSim::new(single_petal_params(3));
    let checker = InvariantChecker::new();
    let liveness = LivenessChecker::new();
    sim.add_trace_sink(checker.clone());
    sim.add_trace_sink(liveness.clone());
    for _ in 0..4 {
        sim.spawn_client(WebsiteId(0), LocalityId(0));
    }
    sim.run_until(Time::from_mins(30));
    let victim = sim
        .directories()
        .into_iter()
        .find(|(_, p, _)| p.chord_id() == petal().chord_id())
        .expect("petal directory alive")
        .0;
    sim.fail_peer(victim);
    sim.run_until(Time::from_mins(90));
    let result = sim.finish();
    assert!(result.replacements >= 1, "replacement must have happened");
    liveness.assert_clean();
    checker.assert_clean();
    assert!(
        checker.queries_issued() > 20,
        "traced queries: {}",
        checker.queries_issued()
    );
    assert!(checker.queries_completed() > 0);
}

#[test]
fn invariants_hold_across_a_petalup_split() {
    // PetalUp (§4): drive the single petal over a tiny capacity so it
    // splits, and check from the trace that instance ids stay contiguous
    // and no position is double-held.
    let mut p = single_petal_params(8);
    p.directory_capacity = 3;
    let mut sim = FlowerSim::new(p);
    let checker = InvariantChecker::new();
    sim.add_trace_sink(checker.clone());
    for _ in 0..8 {
        sim.spawn_client(WebsiteId(0), LocalityId(0));
    }
    sim.run_until(Time::from_mins(120));
    let result = sim.finish();
    assert!(result.splits >= 1, "petal must have split");
    checker.assert_clean();
    assert!(
        checker.max_instance(0, 0) >= Some(1),
        "trace must show instance 1 being claimed, saw {:?}",
        checker.max_instance(0, 0)
    );
}

#[test]
fn voluntary_leave_hands_over_without_losing_the_index() {
    let mut sim = FlowerSim::new(single_petal_params(3));
    for _ in 0..3 {
        sim.spawn_client(WebsiteId(0), LocalityId(0));
    }
    sim.run_until(Time::from_mins(30));
    let dir_of = |sim: &FlowerSim| {
        sim.directories()
            .into_iter()
            .find(|(_, p, _)| p.chord_id() == petal().chord_id())
    };
    let (victim, _, load) = dir_of(&sim).expect("petal directory alive");
    assert!(load >= 3);
    sim.leave_peer(victim);
    sim.run_until(Time::from_mins(34));
    let (heir, _, heir_load) = dir_of(&sim).expect("heir took the position");
    assert_ne!(heir, victim);
    assert!(
        heir_load >= 2,
        "hand-over must carry the index snapshot (§5.2.2), load {heir_load}"
    );
}

#[test]
fn vacant_position_takeover_by_first_client() {
    // §5.2.2 case 2: the first client of a petal whose position is vacant
    // becomes its directory. Kill the only directory while the petal is
    // empty, then introduce a client.
    let mut sim = FlowerSim::new(single_petal_params(5));
    let victim = sim
        .directories()
        .into_iter()
        .find(|(_, p, _)| p.chord_id() == petal().chord_id())
        .expect("petal directory")
        .0;
    sim.fail_peer(victim);
    sim.run_until(Time::from_mins(5));
    assert_eq!(sim.directory_count(), 3, "the three anchors remain");
    let c = sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(30));
    // §5.2.2 case 2: the client's routed query reaches the ring owner of
    // the vacant position (an anchor directory), which grants it the
    // takeover — the client becomes d(ws0, loc0) itself.
    let holder = sim
        .directories()
        .into_iter()
        .find(|(_, p, _)| p.chord_id() == petal().chord_id());
    let (holder_id, _, _) = holder.expect("vacant position taken over");
    assert_eq!(holder_id, c, "the first client takes the vacant position");
    let result = sim.finish();
    assert!(result.stats.queries > 0);
    assert!(result.replacements >= 1);
}

#[test]
fn content_survives_in_petal_after_provider_death() {
    let mut sim = FlowerSim::new(single_petal_params(6));
    let a = sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(40));
    let b = sim.spawn_client(WebsiteId(0), LocalityId(0));
    sim.run_until(Time::from_mins(80));
    // Kill the original provider; the directory should prune it (dead-peer
    // reports / expiry) and late queries must not wedge.
    sim.fail_peer(a);
    sim.run_until(Time::from_mins(120));
    let peer_b = sim.world().node(b).expect("b alive");
    assert!(peer_b.store_len() > 5, "b kept querying successfully");
}

#[test]
fn dir_info_repoints_to_replacement_across_the_petal() {
    // §5.1/§5.2.2: after a directory replacement, surviving content peers'
    // dir-info must converge on the new holder (via claim denials, ack
    // identities and gossip merging).
    let mut sim = FlowerSim::new(single_petal_params(9));
    let mut members = Vec::new();
    for _ in 0..4 {
        members.push(sim.spawn_client(WebsiteId(0), LocalityId(0)));
    }
    sim.run_until(Time::from_mins(30));
    let victim = sim
        .directories()
        .into_iter()
        .find(|(_, p, _)| p.chord_id() == petal().chord_id())
        .expect("petal directory")
        .0;
    sim.fail_peer(victim);
    sim.run_until(Time::from_mins(75));
    let heir = sim
        .directories()
        .into_iter()
        .find(|(_, p, _)| p.chord_id() == petal().chord_id())
        .expect("replacement holder")
        .0;
    let mut repointed = 0;
    let mut alive = 0;
    for &m in &members {
        if m == heir {
            continue; // promoted member no longer holds dir-info
        }
        if let Some(peer) = sim.world().node(m) {
            alive += 1;
            if peer.dir_info().is_some_and(|d| d.holder.node == heir) {
                repointed += 1;
            }
        }
    }
    assert!(alive >= 2, "members survived");
    assert!(
        repointed >= alive - 1,
        "only {repointed}/{alive} members learned the new holder"
    );
}
