//! Sampled time-series gauges ("live gauges" of the tracing subsystem).
//!
//! A [`GaugeRegistry`] holds named time series, each a list of `(time_ms,
//! value)` points appended by a periodic sampler (the experiment engines
//! sample petal sizes, D-ring size, live population and per-class message
//! rates on a configurable period). The registry itself is engine-agnostic
//! pure data, so it lives here next to the other measurement types.

use std::collections::BTreeMap;

use crate::report::{ascii_lines, Csv};

/// A registry of named, append-only `(time_ms, value)` series.
#[derive(Debug, Clone, Default)]
pub struct GaugeRegistry {
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl GaugeRegistry {
    pub fn new() -> GaugeRegistry {
        GaugeRegistry::default()
    }

    /// Append one sample. Samples are expected (but not required) to arrive
    /// in time order per series.
    pub fn record(&mut self, name: &str, at_ms: u64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((at_ms, value));
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Points of one series.
    pub fn series(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Latest value of one series.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.series
            .get(name)
            .and_then(|s| s.last())
            .map(|&(_, v)| v)
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Merge another registry into this one (used when a run is assembled
    /// from time slices).
    pub fn merge(&mut self, other: &GaugeRegistry) {
        for (name, pts) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend_from_slice(pts);
        }
    }

    /// Long-format CSV: `series,time_ms,value`.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(&["series", "time_ms", "value"]);
        for (name, pts) in &self.series {
            for &(t, v) in pts {
                csv.row(&[name.clone(), t.to_string(), format!("{v}")]);
            }
        }
        csv
    }

    /// ASCII chart of selected series (minutes on the x axis). Series that
    /// have no points are skipped; returns an empty string if nothing is
    /// plottable.
    pub fn ascii_chart(&self, title: &str, names: &[&str], width: usize, height: usize) -> String {
        let data: Vec<(&str, Vec<(f64, f64)>)> = names
            .iter()
            .filter_map(|&n| {
                let pts = self.series.get(n)?;
                if pts.is_empty() {
                    return None;
                }
                Some((
                    n,
                    pts.iter().map(|&(t, v)| (t as f64 / 60_000.0, v)).collect(),
                ))
            })
            .collect();
        if data.is_empty() {
            return String::new();
        }
        let series: Vec<(&str, &[(f64, f64)])> =
            data.iter().map(|(n, p)| (*n, p.as_slice())).collect();
        ascii_lines(title, &series, width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let mut g = GaugeRegistry::new();
        g.record("pop", 0, 60.0);
        g.record("pop", 60_000, 90.0);
        g.record("dring", 0, 12.0);
        assert_eq!(g.names(), vec!["dring", "pop"]);
        assert_eq!(g.series("pop").unwrap(), &[(0, 60.0), (60_000, 90.0)]);
        assert_eq!(g.last("pop"), Some(90.0));
        assert_eq!(g.last("missing"), None);
    }

    #[test]
    fn csv_is_long_format() {
        let mut g = GaugeRegistry::new();
        g.record("pop", 1000, 5.0);
        let out = g.to_csv().as_str().to_string();
        assert!(out.starts_with("series,time_ms,value"));
        assert!(out.contains("pop,1000,5"));
    }

    #[test]
    fn merge_concatenates_slices() {
        let mut a = GaugeRegistry::new();
        a.record("x", 0, 1.0);
        let mut b = GaugeRegistry::new();
        b.record("x", 10, 2.0);
        b.record("y", 10, 3.0);
        a.merge(&b);
        assert_eq!(a.series("x").unwrap().len(), 2);
        assert_eq!(a.last("y"), Some(3.0));
    }

    #[test]
    fn ascii_chart_skips_empty_and_unknown_series() {
        let mut g = GaugeRegistry::new();
        g.record("pop", 0, 1.0);
        g.record("pop", 120_000, 3.0);
        let chart = g.ascii_chart("gauges", &["pop", "nope"], 40, 8);
        assert!(chart.contains("gauges"));
        assert!(chart.contains("pop"));
        assert!(g.ascii_chart("t", &["nope"], 40, 8).is_empty());
    }
}
