//! JSONL trace export: a [`TraceSink`] that writes one flat JSON object per
//! trace event, and a parser for reading such files back.
//!
//! The format is deliberately flat — every record is one line, every field
//! a scalar — so traces can be processed with `grep`/`jq` and re-parsed
//! here without a JSON dependency. A query's full causal path is the set
//! of lines sharing its `qid` field, in file (= simulation time) order.
//!
//! ```text
//! {"t":152340,"kind":"custom","node":17,"name":"query_issued","qid":17825793,"ws":0,"object":42}
//! {"t":152340,"kind":"send","src":17,"dst":3,"class":"dring_route","latency_ms":38}
//! {"t":152378,"kind":"deliver","src":17,"dst":3,"class":"dring_route"}
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use simnet::{FieldValue, Time, TraceEvent, TraceSink};

/// Streams trace events as JSON lines into any [`Write`] target.
pub struct JsonlTraceWriter<W: Write> {
    out: W,
    lines: u64,
    /// Reused per-event buffer.
    buf: String,
}

impl JsonlTraceWriter<BufWriter<File>> {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlTraceWriter<W> {
    pub fn new(out: W) -> Self {
        JsonlTraceWriter {
            out,
            lines: 0,
            buf: String::with_capacity(256),
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn push_field(buf: &mut String, key: &str, v: &FieldValue) {
        let _ = match v {
            FieldValue::U64(x) => write!(buf, ",\"{key}\":{x}"),
            FieldValue::I64(x) => write!(buf, ",\"{key}\":{x}"),
            FieldValue::F64(x) if x.is_finite() => write!(buf, ",\"{key}\":{x}"),
            FieldValue::F64(_) => write!(buf, ",\"{key}\":null"),
            FieldValue::Str(s) => write!(buf, ",\"{key}\":\"{}\"", escape(s)),
            FieldValue::Bool(b) => write!(buf, ",\"{key}\":{b}"),
        };
    }
}

fn escape(s: &str) -> String {
    // Trace strings are static identifiers in practice; handle the JSON
    // metacharacters anyway so the output is always valid.
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl<W: Write> TraceSink for JsonlTraceWriter<W> {
    fn event(&mut self, at: Time, ev: &TraceEvent) {
        let buf = &mut self.buf;
        buf.clear();
        let _ = write!(buf, "{{\"t\":{},\"kind\":\"{}\"", at.as_millis(), ev.kind());
        match ev {
            TraceEvent::NodeSpawn { node, locality } => {
                let _ = write!(buf, ",\"node\":{},\"loc\":{}", node.raw(), locality.0);
            }
            TraceEvent::NodeFail { node } | TraceEvent::NodeLeave { node } => {
                let _ = write!(buf, ",\"node\":{}", node.raw());
            }
            TraceEvent::MsgSend {
                src,
                dst,
                class,
                latency_ms,
            } => {
                let _ = write!(
                    buf,
                    ",\"src\":{},\"dst\":{},\"class\":\"{}\",\"latency_ms\":{}",
                    src.raw(),
                    dst.raw(),
                    escape(class),
                    latency_ms
                );
            }
            TraceEvent::MsgDeliver { src, dst, class } => {
                let _ = write!(
                    buf,
                    ",\"src\":{},\"dst\":{},\"class\":\"{}\"",
                    src.raw(),
                    dst.raw(),
                    escape(class)
                );
            }
            TraceEvent::MsgDrop {
                src,
                dst,
                class,
                reason,
            } => {
                let _ = write!(
                    buf,
                    ",\"src\":{},\"dst\":{},\"class\":\"{}\",\"reason\":\"{}\"",
                    src.raw(),
                    dst.raw(),
                    escape(class),
                    reason.as_str()
                );
            }
            TraceEvent::TimerSet {
                node,
                class,
                delay_ms,
            } => {
                let _ = write!(
                    buf,
                    ",\"node\":{},\"class\":\"{}\",\"delay_ms\":{}",
                    node.raw(),
                    escape(class),
                    delay_ms
                );
            }
            TraceEvent::TimerFire { node, class } => {
                let _ = write!(
                    buf,
                    ",\"node\":{},\"class\":\"{}\"",
                    node.raw(),
                    escape(class)
                );
            }
            TraceEvent::Custom { node, name, fields } => {
                let _ = write!(
                    buf,
                    ",\"node\":{},\"name\":\"{}\"",
                    node.raw(),
                    escape(name)
                );
                for (k, v) in fields {
                    Self::push_field(buf, k, v);
                }
            }
        }
        buf.push('}');
        buf.push('\n');
        let _ = self.out.write_all(buf.as_bytes());
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// One parsed trace line: the flat key → scalar map.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLine {
    pub fields: BTreeMap<String, JsonScalar>,
}

/// Scalar values appearing in trace lines.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl TraceLine {
    /// Simulation time of the event, ms.
    pub fn t(&self) -> u64 {
        self.num("t").unwrap_or(0.0) as u64
    }

    /// The event kind (`send`, `deliver`, `custom`, …).
    pub fn kind(&self) -> &str {
        self.str("kind").unwrap_or("")
    }

    /// The `Custom` event name, if any.
    pub fn name(&self) -> Option<&str> {
        self.str("name")
    }

    pub fn num(&self, key: &str) -> Option<f64> {
        match self.fields.get(key)? {
            JsonScalar::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key)? {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.fields.get(key)? {
            JsonScalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one line produced by [`JsonlTraceWriter`]. Returns `None` on
/// malformed input (this is a parser for our own flat output, not a general
/// JSON parser — nested values are rejected).
pub fn parse_trace_line(line: &str) -> Option<TraceLine> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = BTreeMap::new();
    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',');
        // Key.
        let r = rest.strip_prefix('"')?;
        let kend = r.find('"')?;
        let key = &r[..kend];
        let r = r[kend + 1..].strip_prefix(':')?;
        // Value.
        let (value, after) = if let Some(vr) = r.strip_prefix('"') {
            let mut s = String::new();
            let mut it = vr.char_indices();
            let mut end = None;
            while let Some((i, c)) = it.next() {
                match c {
                    '\\' => match it.next()?.1 {
                        'n' => s.push('\n'),
                        'u' => {
                            let hex: String =
                                (0..4).map_while(|_| it.next().map(|(_, c)| c)).collect();
                            s.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                        }
                        c => s.push(c),
                    },
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    c => s.push(c),
                }
            }
            (JsonScalar::Str(s), &vr[end? + 1..])
        } else {
            let vend = r.find(',').unwrap_or(r.len());
            let raw = &r[..vend];
            let v = match raw {
                "true" => JsonScalar::Bool(true),
                "false" => JsonScalar::Bool(false),
                "null" => JsonScalar::Null,
                n => JsonScalar::Num(n.parse().ok()?),
            };
            (v, &r[vend..])
        };
        fields.insert(key.to_string(), value);
        rest = after;
    }
    Some(TraceLine { fields })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn writes_and_parses_every_event_shape() {
        let mut w = JsonlTraceWriter::new(Vec::new());
        w.event(
            Time(5),
            &TraceEvent::NodeSpawn {
                node: n(1),
                locality: simnet::LocalityId(3),
            },
        );
        w.event(
            Time(10),
            &TraceEvent::MsgSend {
                src: n(1),
                dst: n(2),
                class: "fetch",
                latency_ms: 17,
            },
        );
        w.event(
            Time(27),
            &TraceEvent::MsgDeliver {
                src: n(1),
                dst: n(2),
                class: "fetch",
            },
        );
        w.event(
            Time(30),
            &TraceEvent::Custom {
                node: n(2),
                name: "query_issued",
                fields: vec![
                    ("qid", 99u64.into()),
                    ("hit", true.into()),
                    ("provider", "origin".into()),
                    ("score", 0.5f64.into()),
                ],
            },
        );
        assert_eq!(w.lines(), 4);
        let text = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<TraceLine> = text.lines().map(|l| parse_trace_line(l).unwrap()).collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].kind(), "spawn");
        assert_eq!(lines[0].num("loc"), Some(3.0));
        assert_eq!(lines[1].kind(), "send");
        assert_eq!(lines[1].num("latency_ms"), Some(17.0));
        assert_eq!(lines[2].t(), 27);
        assert_eq!(lines[3].name(), Some("query_issued"));
        assert_eq!(lines[3].num("qid"), Some(99.0));
        assert_eq!(lines[3].bool("hit"), Some(true));
        assert_eq!(lines[3].str("provider"), Some("origin"));
        assert_eq!(lines[3].num("score"), Some(0.5));
    }

    #[test]
    fn escaping_round_trips() {
        let s = "a\"b\\c\nd";
        let mut w = JsonlTraceWriter::new(Vec::new());
        w.event(
            Time(0),
            &TraceEvent::Custom {
                node: n(0),
                name: "x",
                fields: vec![("v", FieldValue::Str("quoted"))],
            },
        );
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert!(parse_trace_line(&text).is_some());
        // The escape helper itself handles the metacharacters.
        assert_eq!(escape(s), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_trace_line("").is_none());
        assert!(parse_trace_line("{\"t\":}").is_none());
        assert!(parse_trace_line("not json").is_none());
        assert!(parse_trace_line("{\"t\":1,\"nested\":{\"x\":1}}").is_none());
    }

    #[test]
    fn file_round_trip_through_create() {
        let path = std::env::temp_dir().join(format!("trace_rt_{}.jsonl", std::process::id()));
        {
            let mut w = JsonlTraceWriter::create(&path).unwrap();
            w.event(Time(1), &TraceEvent::NodeFail { node: n(4) });
            w.event(
                Time(2),
                &TraceEvent::MsgDrop {
                    src: n(4),
                    dst: n(5),
                    class: "keepalive",
                    reason: simnet::DropReason::DeadDestination,
                },
            );
            w.flush();
        } // drop flushes the BufWriter
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<TraceLine> = text.lines().map(|l| parse_trace_line(l).unwrap()).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].kind(), "fail");
        assert_eq!(lines[1].kind(), "drop");
        assert_eq!(lines[1].str("class"), Some("keepalive"));
        assert_eq!(lines[1].str("reason"), Some("dead_dst"));
        let _ = std::fs::remove_file(&path);
    }
}
