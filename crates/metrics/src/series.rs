//! Time-bucketed series for "evolution of hit ratio with time" (Figure 3).

use crate::query::QueryRecord;

/// Accumulates (hits, total) per fixed-width time bucket and renders either
/// the per-bucket or the cumulative hit-ratio curve. The paper's Fig. 3
/// shows hit ratio *improving over 24 hours* and quotes the end-of-run
/// value, which corresponds to the cumulative reading.
#[derive(Debug, Clone)]
pub struct HitRatioSeries {
    bucket_ms: u64,
    hits: Vec<u64>,
    totals: Vec<u64>,
}

impl HitRatioSeries {
    pub fn new(bucket_ms: u64) -> HitRatioSeries {
        assert!(bucket_ms > 0);
        HitRatioSeries {
            bucket_ms,
            hits: Vec::new(),
            totals: Vec::new(),
        }
    }

    pub fn bucket_ms(&self) -> u64 {
        self.bucket_ms
    }

    pub fn record(&mut self, q: &QueryRecord) {
        self.record_at(q.issued_at_ms, q.is_hit());
    }

    pub fn record_at(&mut self, at_ms: u64, hit: bool) {
        let idx = (at_ms / self.bucket_ms) as usize;
        if idx >= self.totals.len() {
            self.totals.resize(idx + 1, 0);
            self.hits.resize(idx + 1, 0);
        }
        self.totals[idx] += 1;
        if hit {
            self.hits[idx] += 1;
        }
    }

    /// Number of buckets touched.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// `(bucket_end_ms, ratio)` per bucket; buckets with no queries carry
    /// the previous ratio (flat segments, as a plotter would draw them).
    pub fn per_bucket(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.totals.len());
        let mut last = 0.0;
        for (i, (&h, &t)) in self.hits.iter().zip(&self.totals).enumerate() {
            if t > 0 {
                last = h as f64 / t as f64;
            }
            out.push(((i as u64 + 1) * self.bucket_ms, last));
        }
        out
    }

    /// `(bucket_end_ms, cumulative_ratio)` per bucket.
    pub fn cumulative(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.totals.len());
        let mut h_acc = 0u64;
        let mut t_acc = 0u64;
        for (i, (&h, &t)) in self.hits.iter().zip(&self.totals).enumerate() {
            h_acc += h;
            t_acc += t;
            let r = if t_acc == 0 {
                0.0
            } else {
                h_acc as f64 / t_acc as f64
            };
            out.push(((i as u64 + 1) * self.bucket_ms, r));
        }
        out
    }

    /// Final cumulative hit ratio.
    pub fn final_ratio(&self) -> f64 {
        let h: u64 = self.hits.iter().sum();
        let t: u64 = self.totals.iter().sum();
        if t == 0 {
            0.0
        } else {
            h as f64 / t as f64
        }
    }

    /// Total queries recorded.
    pub fn total_queries(&self) -> u64 {
        self.totals.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_by_time() {
        let mut s = HitRatioSeries::new(100);
        s.record_at(10, true);
        s.record_at(20, false);
        s.record_at(150, true);
        s.record_at(350, true);
        assert_eq!(s.len(), 4);
        let pb = s.per_bucket();
        assert_eq!(pb[0], (100, 0.5));
        assert_eq!(pb[1], (200, 1.0));
        // Empty bucket 2 carries the last ratio.
        assert_eq!(pb[2], (300, 1.0));
        assert_eq!(pb[3], (400, 1.0));
    }

    #[test]
    fn cumulative_is_running_ratio() {
        let mut s = HitRatioSeries::new(100);
        s.record_at(10, false);
        s.record_at(110, true);
        s.record_at(210, true);
        let c = s.cumulative();
        assert_eq!(c[0].1, 0.0);
        assert_eq!(c[1].1, 0.5);
        assert!((c[2].1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.final_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.total_queries(), 3);
    }

    #[test]
    fn empty_series() {
        let s = HitRatioSeries::new(1_000);
        assert!(s.is_empty());
        assert_eq!(s.final_ratio(), 0.0);
        assert!(s.cumulative().is_empty());
    }
}
