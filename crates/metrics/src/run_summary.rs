//! The schema-stable scalar summary of one finished run.
//!
//! Every bench binary and the sweep orchestrator serialize run results
//! through this one type, so the CSV column set, the JSON key set, the
//! ordering and the float precision are fixed in exactly one place. The
//! representation is deliberately flat (no nesting, no optional keys):
//! byte-identical output for identical runs is part of the repo's
//! determinism contract and is asserted in tests.

use std::fmt::Write as _;

use crate::report::Csv;

/// Scalar metrics of one run, in the fixed schema order of
/// [`RunSummary::COLUMNS`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    pub queries: u64,
    pub hits: u64,
    pub hit_ratio: f64,
    pub mean_lookup_ms: f64,
    pub mean_transfer_ms: f64,
    pub mean_dht_hops: f64,
    pub messages_delivered: u64,
    pub messages_per_query: f64,
    pub replacements: u64,
    pub splits: u64,
    pub peak_population: u64,
}

impl RunSummary {
    /// Column names, in serialization order. CSV headers, JSON keys and
    /// [`RunSummary::metrics`] all follow this order.
    pub const COLUMNS: [&'static str; 11] = [
        "queries",
        "hits",
        "hit_ratio",
        "mean_lookup_ms",
        "mean_transfer_ms",
        "mean_dht_hops",
        "messages_delivered",
        "messages_per_query",
        "replacements",
        "splits",
        "peak_population",
    ];

    /// Every metric as `(name, value)` in schema order — the aggregation
    /// substrate: mean/stddev/CI are computed over these per-name across
    /// seeds, so aggregate rows inherit the schema ordering.
    pub fn metrics(&self) -> [(&'static str, f64); 11] {
        [
            ("queries", self.queries as f64),
            ("hits", self.hits as f64),
            ("hit_ratio", self.hit_ratio),
            ("mean_lookup_ms", self.mean_lookup_ms),
            ("mean_transfer_ms", self.mean_transfer_ms),
            ("mean_dht_hops", self.mean_dht_hops),
            ("messages_delivered", self.messages_delivered as f64),
            ("messages_per_query", self.messages_per_query),
            ("replacements", self.replacements as f64),
            ("splits", self.splits as f64),
            ("peak_population", self.peak_population as f64),
        ]
    }

    /// CSV cell per column, fixed precision (counts exact, ratios 6
    /// decimals, latencies/hops/rates 3 decimals).
    pub fn csv_fields(&self) -> Vec<String> {
        vec![
            self.queries.to_string(),
            self.hits.to_string(),
            format!("{:.6}", self.hit_ratio),
            format!("{:.3}", self.mean_lookup_ms),
            format!("{:.3}", self.mean_transfer_ms),
            format!("{:.3}", self.mean_dht_hops),
            self.messages_delivered.to_string(),
            format!("{:.3}", self.messages_per_query),
            self.replacements.to_string(),
            self.splits.to_string(),
            self.peak_population.to_string(),
        ]
    }

    /// Flat JSON object, keys in schema order, fixed precision (counts as
    /// integers, floats as in [`RunSummary::csv_fields`]).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"queries\":{}", self.queries);
        let _ = write!(s, ",\"hits\":{}", self.hits);
        let _ = write!(s, ",\"hit_ratio\":{:.6}", self.hit_ratio);
        let _ = write!(s, ",\"mean_lookup_ms\":{:.3}", self.mean_lookup_ms);
        let _ = write!(s, ",\"mean_transfer_ms\":{:.3}", self.mean_transfer_ms);
        let _ = write!(s, ",\"mean_dht_hops\":{:.3}", self.mean_dht_hops);
        let _ = write!(s, ",\"messages_delivered\":{}", self.messages_delivered);
        let _ = write!(s, ",\"messages_per_query\":{:.3}", self.messages_per_query);
        let _ = write!(s, ",\"replacements\":{}", self.replacements);
        let _ = write!(s, ",\"splits\":{}", self.splits);
        let _ = write!(s, ",\"peak_population\":{}", self.peak_population);
        s.push('}');
        s
    }

    /// A [`Csv`] whose header is `prefix ++ COLUMNS` — the one way every
    /// binary builds a per-run results file.
    pub fn csv_with_prefix(prefix: &[&str]) -> Csv {
        let mut header: Vec<&str> = prefix.to_vec();
        header.extend_from_slice(&Self::COLUMNS);
        Csv::new(&header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            queries: 1000,
            hits: 640,
            hit_ratio: 0.64,
            mean_lookup_ms: 151.25,
            mean_transfer_ms: 88.5,
            mean_dht_hops: 2.75,
            messages_delivered: 123456,
            messages_per_query: 123.456,
            replacements: 7,
            splits: 2,
            peak_population: 311,
        }
    }

    #[test]
    fn columns_fields_and_metrics_agree_in_order_and_width() {
        let s = sample();
        assert_eq!(s.csv_fields().len(), RunSummary::COLUMNS.len());
        let names: Vec<&str> = s.metrics().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, RunSummary::COLUMNS);
    }

    #[test]
    fn json_is_flat_and_schema_ordered() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"queries\":1000,"));
        assert!(j.ends_with("\"peak_population\":311}"));
        assert!(j.contains("\"hit_ratio\":0.640000"));
        // Keys appear in schema order.
        let mut last = 0;
        for c in RunSummary::COLUMNS {
            let pos = j.find(&format!("\"{c}\":")).expect("key present");
            assert!(pos >= last, "{c} out of order");
            last = pos;
        }
    }

    #[test]
    fn serialization_is_reproducible() {
        assert_eq!(sample().to_json(), sample().to_json());
        assert_eq!(sample().csv_fields(), sample().csv_fields());
    }

    #[test]
    fn prefixed_csv_has_full_header() {
        let c = RunSummary::csv_with_prefix(&["cell", "seed"]);
        let header = c.as_str().lines().next().unwrap();
        assert!(header.starts_with("cell,seed,queries,"));
        assert!(header.ends_with("peak_population"));
    }
}
