//! The per-query measurement record and the three metrics of §6:
//!
//! 1. **Hit ratio** — fraction of queries served from the P2P system;
//! 2. **Lookup latency** — time to resolve a query and reach the node that
//!    will provide the object;
//! 3. **Transfer distance** — network latency from the querying peer to the
//!    provider.

/// Who ended up providing the requested object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// A content peer of the querier's own petal (Flower-CDN) or a listed
    /// previous downloader (Squirrel). Counts as a hit.
    ContentPeer,
    /// A directory/home peer served it from its own store. Counts as a hit.
    DirectoryPeer,
    /// The origin web server — the P2P system missed.
    OriginServer,
}

/// How the provider was found (diagnostic breakdown; not a paper metric but
/// invaluable when validating the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedVia {
    /// The querier's own gossip view / content summaries (petal-local).
    LocalView,
    /// The querier asked its directory (or Squirrel home node) directly.
    Directory,
    /// Routed over the DHT (new client in Flower-CDN; every Squirrel query).
    DhtRoute,
    /// Fallback to the origin server without any P2P resolution.
    DirectOrigin,
}

/// One completed query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Virtual time the query was issued, ms.
    pub issued_at_ms: u64,
    /// Lookup latency, ms.
    pub lookup_ms: u64,
    /// Transfer distance, ms.
    pub transfer_ms: u64,
    /// DHT hops taken, if routed.
    pub dht_hops: u32,
    pub provider: Provider,
    pub via: ResolvedVia,
}

impl QueryRecord {
    /// A query counts as a *hit* when the P2P system served it.
    pub fn is_hit(&self) -> bool {
        self.provider != Provider::OriginServer
    }
}

/// Streaming aggregate over query records.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    pub queries: u64,
    pub hits: u64,
    lookup_sum: u64,
    transfer_sum: u64,
    hop_sum: u64,
    routed: u64,
}

impl QueryStats {
    pub fn record(&mut self, q: &QueryRecord) {
        self.queries += 1;
        if q.is_hit() {
            self.hits += 1;
        }
        self.lookup_sum += q.lookup_ms;
        self.transfer_sum += q.transfer_ms;
        if q.via == ResolvedVia::DhtRoute {
            self.routed += 1;
            self.hop_sum += u64::from(q.dht_hops);
        }
    }

    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    pub fn mean_lookup_ms(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.lookup_sum as f64 / self.queries as f64
        }
    }

    pub fn mean_transfer_ms(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.transfer_sum as f64 / self.queries as f64
        }
    }

    /// Mean DHT hops over routed queries only.
    pub fn mean_dht_hops(&self) -> f64 {
        if self.routed == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.routed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(hit: bool, lookup: u64, transfer: u64) -> QueryRecord {
        QueryRecord {
            issued_at_ms: 0,
            lookup_ms: lookup,
            transfer_ms: transfer,
            dht_hops: 3,
            provider: if hit {
                Provider::ContentPeer
            } else {
                Provider::OriginServer
            },
            via: ResolvedVia::DhtRoute,
        }
    }

    #[test]
    fn hit_definition_is_p2p_served() {
        assert!(q(true, 0, 0).is_hit());
        assert!(!q(false, 0, 0).is_hit());
        let dir = QueryRecord {
            provider: Provider::DirectoryPeer,
            ..q(false, 0, 0)
        };
        assert!(dir.is_hit());
    }

    #[test]
    fn stats_aggregate_correctly() {
        let mut s = QueryStats::default();
        s.record(&q(true, 100, 20));
        s.record(&q(false, 1_500, 300));
        s.record(&q(true, 200, 40));
        assert_eq!(s.queries, 3);
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_lookup_ms() - 600.0).abs() < 1e-12);
        assert!((s.mean_transfer_ms() - 120.0).abs() < 1e-12);
        assert!((s.mean_dht_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = QueryStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.mean_lookup_ms(), 0.0);
        assert_eq!(s.mean_dht_hops(), 0.0);
    }

    #[test]
    fn local_queries_do_not_skew_hop_mean() {
        let mut s = QueryStats::default();
        let mut local = q(true, 30, 10);
        local.via = ResolvedVia::LocalView;
        local.dht_hops = 0;
        s.record(&local);
        s.record(&q(true, 100, 10)); // routed, 3 hops
        assert!((s.mean_dht_hops() - 3.0).abs() < 1e-12);
    }
}
