//! Output formatting: CSV files for downstream plotting and ASCII renderings
//! so every figure is inspectable straight from the terminal output of the
//! bench harnesses.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Minimal CSV writer (we control all inputs; quoting handles the comma and
/// quote cases that can occur in labels).
pub struct Csv {
    out: String,
    columns: usize,
}

impl Csv {
    pub fn new(header: &[&str]) -> Csv {
        let mut csv = Csv {
            out: String::new(),
            columns: header.len(),
        };
        csv.row(header);
        csv
    }

    /// Append a row; must match the header width.
    pub fn row<S: AsRef<str>>(&mut self, fields: &[S]) -> &mut Self {
        assert_eq!(fields.len(), self.columns, "row width mismatch");
        for (i, f) in fields.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&escape(f.as_ref()));
        }
        self.out.push('\n');
        self
    }

    pub fn as_str(&self) -> &str {
        &self.out
    }

    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, &self.out)
    }
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render multiple `(label, series)` line plots on one ASCII canvas —
/// used for Fig. 3 (hit ratio vs time, two systems).
pub fn ascii_lines(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4);
    let marks = ['*', '+', 'o', 'x', '#', '%'];
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, pts) in series {
        for &(x, y) in *pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() {
        return format!("{title}\n(no data)\n");
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        for &(x, y) in *pts {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            grid[row][cx] = marks[si % marks.len()];
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", marks[i % marks.len()], name))
        .collect();
    let _ = writeln!(out, "legend: {}", legend.join("   "));
    let _ = writeln!(out, "y: [{ymin:.3}, {ymax:.3}]  x: [{xmin:.1}, {xmax:.1}]");
    for row in grid {
        let _ = writeln!(out, "|{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    out
}

/// Render a grouped horizontal bar chart of distribution fractions —
/// used for Figs. 4 and 5 (per-bucket query fractions, two systems).
pub fn ascii_bars(title: &str, labels: &[String], groups: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0).max(8);
    let name_w = groups.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    const BAR_W: f64 = 50.0;
    for (i, label) in labels.iter().enumerate() {
        for (gi, (name, fracs)) in groups.iter().enumerate() {
            let f = fracs.get(i).copied().unwrap_or(0.0);
            let bar = "#".repeat((f * BAR_W).round() as usize);
            let shown_label = if gi == 0 { label.as_str() } else { "" };
            let _ = writeln!(
                out,
                "{shown_label:>label_w$} {name:>name_w$} |{bar} {:.1}%",
                f * 100.0
            );
        }
    }
    out
}

/// Render an aligned text table — used for Table 2.
pub fn ascii_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "table row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let line = |widths: &[usize]| {
        let mut s = String::from("+");
        for w in widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let _ = writeln!(out, "{}", line(&widths));
    let mut hdr = String::from("|");
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(hdr, " {h:<w$} |");
    }
    let _ = writeln!(out, "{hdr}");
    let _ = writeln!(out, "{}", line(&widths));
    for row in rows {
        let mut r = String::from("|");
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(r, " {c:<w$} |");
        }
        let _ = writeln!(out, "{r}");
    }
    let _ = writeln!(out, "{}", line(&widths));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escapes_and_shapes() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["1", "plain"]);
        c.row(&["2", "with,comma"]);
        c.row(&["3", "with\"quote"]);
        let s = c.as_str();
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("\"with,comma\""));
        assert!(s.contains("\"with\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn csv_rejects_ragged_rows() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["only-one"]);
    }

    #[test]
    fn csv_saves_to_disk() {
        let dir = std::env::temp_dir().join("cdn_metrics_csv_test");
        let path = dir.join("nested/out.csv");
        let mut c = Csv::new(&["x"]);
        c.row(&["1"]);
        c.save(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lines_renders_both_series() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64 * 0.1)).collect();
        let b: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 1.0 - i as f64 * 0.05)).collect();
        let s = ascii_lines("test", &[("up", &a), ("down", &b)], 40, 10);
        assert!(s.contains("* up"));
        assert!(s.contains("+ down"));
        assert!(s.contains('*') && s.contains('+'));
    }

    #[test]
    fn lines_handles_empty() {
        let s = ascii_lines("empty", &[("none", &[])], 40, 10);
        assert!(s.contains("no data"));
    }

    #[test]
    fn bars_show_percentages() {
        let labels = vec!["0-100".to_string(), ">100".to_string()];
        let s = ascii_bars(
            "dist",
            &labels,
            &[("sysA", vec![0.62, 0.38]), ("sysB", vec![0.22, 0.78])],
        );
        assert!(s.contains("62.0%"));
        assert!(s.contains("78.0%"));
        assert!(s.contains("sysA") && s.contains("sysB"));
    }

    #[test]
    fn table_aligns() {
        let s = ascii_table(
            "t",
            &["P", "approach", "hit"],
            &[
                vec!["2000".into(), "Squirrel".into(), "0.35".into()],
                vec!["2000".into(), "Flower-CDN".into(), "0.63".into()],
            ],
        );
        assert!(s.contains("| 2000"));
        assert!(s.contains("Flower-CDN"));
        assert_eq!(s.lines().filter(|l| l.starts_with('+')).count(), 3);
    }
}
