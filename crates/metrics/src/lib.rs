//! # cdn-metrics — measurement pipeline for the Flower-CDN reproduction
//!
//! The paper evaluates with three metrics (§6): *hit ratio*, *lookup
//! latency* and *transfer distance*. This crate owns their definitions so
//! that the Flower-CDN engine, the Squirrel baseline and the bench
//! harnesses all measure the same thing:
//!
//! * [`query::QueryRecord`] / [`query::QueryStats`] — one record per
//!   completed query and streaming aggregates over them;
//! * [`histogram::Histogram`] — fixed-edge latency distributions
//!   (Figures 4 and 5);
//! * [`series::HitRatioSeries`] — time-bucketed hit-ratio evolution
//!   (Figure 3);
//! * [`report`] — CSV export plus ASCII line/bar/table renderings so every
//!   regenerated figure is readable in a terminal;
//! * [`gauges::GaugeRegistry`] — sampled time-series gauges (petal sizes,
//!   D-ring size, live population, per-class message rates);
//! * [`trace_jsonl`] — a [`simnet::TraceSink`] that streams structured
//!   trace events as JSON lines, plus a parser to read them back.
//!
//! ```
//! use cdn_metrics::{Histogram, fig4_lookup_edges};
//! let mut h = Histogram::new(fig4_lookup_edges());
//! h.record(120);   // a petal-local lookup
//! h.record(1900);  // a DHT-routed lookup
//! assert_eq!(h.fraction_within(150), 0.5);
//! assert_eq!(h.fraction_overflow(), 0.5);
//! ```

pub mod gauges;
pub mod histogram;
pub mod query;
pub mod report;
pub mod run_summary;
pub mod series;
pub mod trace_jsonl;

pub use gauges::GaugeRegistry;
pub use histogram::{percentile, Histogram};
pub use query::{Provider, QueryRecord, QueryStats, ResolvedVia};
pub use report::{ascii_bars, ascii_lines, ascii_table, Csv};
pub use run_summary::RunSummary;
pub use series::HitRatioSeries;
pub use trace_jsonl::{parse_trace_line, JsonlTraceWriter, TraceLine};

/// The bucket edges used to report Figure 4 (lookup latency distribution).
/// The paper's prose anchors 150 ms and 1200 ms; intermediate edges give
/// the bar chart its shape.
pub fn fig4_lookup_edges() -> Vec<u64> {
    vec![150, 300, 600, 900, 1200]
}

/// The bucket edges used to report Figure 5 (transfer distance
/// distribution). The paper's prose anchors 100 ms.
pub fn fig5_transfer_edges() -> Vec<u64> {
    vec![100, 200, 300, 400, 500]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_edges_include_paper_anchors() {
        assert!(fig4_lookup_edges().contains(&150));
        assert!(fig4_lookup_edges().contains(&1200));
        assert!(fig5_transfer_edges().contains(&100));
    }

    #[test]
    fn edges_are_valid_histogram_inputs() {
        let _ = Histogram::new(fig4_lookup_edges());
        let _ = Histogram::new(fig5_transfer_edges());
    }
}
