//! Fixed-edge histograms for latency distributions (Figures 4 and 5).

/// A histogram over explicit bucket upper edges, with a final overflow
/// bucket. Edges are in the measured unit (milliseconds for this repo).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Upper (inclusive) edges of the finite buckets, strictly increasing.
    edges: Vec<u64>,
    /// `counts.len() == edges.len() + 1`; the last slot is the overflow.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create a histogram with the given inclusive upper edges.
    ///
    /// # Panics
    /// If `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<u64>) -> Histogram {
        assert!(!edges.is_empty(), "need at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let n = edges.len();
        Histogram {
            edges,
            counts: vec![0; n + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Evenly spaced edges: `width, 2·width, …, buckets·width`.
    pub fn linear(width: u64, buckets: usize) -> Histogram {
        assert!(width > 0 && buckets > 0);
        Histogram::new((1..=buckets as u64).map(|i| i * width).collect())
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.edges.partition_point(|&e| e < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Bucket upper edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Raw bucket counts (`edges.len() + 1` entries, last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fraction of values ≤ `edge` (`edge` must be one of the bucket
    /// edges). This is how the paper states Fig. 4/5 results, e.g. "66% of
    /// our queries are resolved within 150 ms".
    pub fn fraction_within(&self, edge: u64) -> f64 {
        assert!(
            self.edges.contains(&edge),
            "{edge} is not a bucket edge of this histogram"
        );
        if self.total == 0 {
            return 0.0;
        }
        let upto = self.edges.partition_point(|&e| e <= edge);
        let n: u64 = self.counts[..upto].iter().sum();
        n as f64 / self.total as f64
    }

    /// Fraction of values strictly greater than the last finite edge
    /// ("75% of Squirrel's queries take more than 1200 ms").
    pub fn fraction_overflow(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.last().expect("non-empty") as f64 / self.total as f64
    }

    /// Per-bucket fractions, one entry per count slot.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Human-readable bucket labels, e.g. `"0-150"`, `"150-300"`, `">1200"`.
    pub fn labels(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut lo = 0u64;
        for &e in &self.edges {
            out.push(format!("{lo}-{e}"));
            lo = e;
        }
        out.push(format!(">{lo}"));
        out
    }

    /// Merge another histogram with identical edges.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "histogram edges must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile over a retained sample (used for summary tables where
/// bucket resolution is too coarse). Linear interpolation between ranks.
pub fn percentile(sorted: &[u64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p));
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if sorted.len() == 1 {
        return Some(sorted[0] as f64);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_land_in_right_buckets() {
        let mut h = Histogram::new(vec![150, 300, 600, 1200]);
        for v in [0, 150, 151, 600, 1200, 1201, 50_000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1, 2]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(50_000));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new(vec![150, 300]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.counts(), &[0, 0, 0]);
        assert_eq!(h.fraction_within(150), 0.0);
        assert_eq!(h.fraction_overflow(), 0.0);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_sample_histogram() {
        let mut h = Histogram::new(vec![150, 300]);
        h.record(151);
        assert_eq!(h.total(), 1);
        assert_eq!(h.mean(), 151.0);
        assert_eq!(h.min(), Some(151));
        assert_eq!(h.max(), Some(151));
        assert_eq!(h.counts(), &[0, 1, 0]);
        assert_eq!(h.fraction_within(150), 0.0);
        assert_eq!(h.fraction_within(300), 1.0);
        assert_eq!(h.fraction_overflow(), 0.0);
    }

    #[test]
    fn all_samples_overflow() {
        let mut h = Histogram::new(vec![10]);
        h.record(11);
        h.record(u64::MAX / 2);
        assert_eq!(h.counts(), &[0, 2]);
        assert_eq!(h.fraction_within(10), 0.0);
        assert_eq!(h.fraction_overflow(), 1.0);
        // Overflow values still feed min/max.
        assert_eq!(h.min(), Some(11));
        assert_eq!(h.max(), Some(u64::MAX / 2));
    }

    #[test]
    fn boundary_values_stay_inclusive_of_upper_edge() {
        let mut h = Histogram::new(vec![100, 200]);
        h.record(100); // exactly the first edge → first bucket
        h.record(200); // exactly the last edge → second bucket, not overflow
        h.record(201); // one past the last edge → overflow
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.fraction_within(200), 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket edge")]
    fn empty_edges_are_rejected() {
        let _ = Histogram::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_edges_are_rejected() {
        let _ = Histogram::new(vec![100, 100]);
    }

    #[test]
    fn merge_with_empty_preserves_min_max() {
        let mut a = Histogram::linear(10, 3);
        a.record(15);
        let b = Histogram::linear(10, 3);
        a.merge(&b); // empty rhs must not clobber min/max
        assert_eq!(a.min(), Some(15));
        assert_eq!(a.max(), Some(15));
        assert_eq!(a.total(), 1);
    }

    #[test]
    fn fraction_within_matches_paper_phrasing() {
        let mut h = Histogram::new(vec![150, 1200]);
        for _ in 0..66 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(500);
        }
        for _ in 0..25 {
            h.record(2_000);
        }
        assert!((h.fraction_within(150) - 0.66).abs() < 1e-12);
        assert!((h.fraction_overflow() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a bucket edge")]
    fn fraction_within_rejects_non_edges() {
        let h = Histogram::new(vec![100]);
        let _ = h.fraction_within(42);
    }

    #[test]
    fn labels_read_naturally() {
        let h = Histogram::new(vec![150, 300]);
        assert_eq!(h.labels(), vec!["0-150", "150-300", ">300"]);
    }

    #[test]
    fn linear_constructor() {
        let h = Histogram::linear(100, 12);
        assert_eq!(h.edges().first(), Some(&100));
        assert_eq!(h.edges().last(), Some(&1_200));
        assert_eq!(h.counts().len(), 13);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::linear(10, 3);
        let mut b = Histogram::linear(10, 3);
        a.record(5);
        b.record(25);
        b.record(999);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts(), &[1, 0, 1, 1]);
        assert_eq!(a.max(), Some(999));
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![10, 20, 30, 40];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7], 99.0), Some(7.0));
    }

    proptest! {
        /// Every recorded value is counted exactly once.
        #[test]
        fn prop_counts_conserved(values in proptest::collection::vec(0u64..10_000, 0..200)) {
            let mut h = Histogram::linear(137, 9);
            for &v in &values { h.record(v); }
            prop_assert_eq!(h.total(), values.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
        }

        /// Mean matches a direct computation.
        #[test]
        fn prop_mean_exact(values in proptest::collection::vec(0u64..1_000_000, 1..100)) {
            let mut h = Histogram::linear(50, 4);
            for &v in &values { h.record(v); }
            let want = values.iter().sum::<u64>() as f64 / values.len() as f64;
            prop_assert!((h.mean() - want).abs() < 1e-6);
        }

        /// fractions() sums to 1 for non-empty histograms.
        #[test]
        fn prop_fractions_sum_to_one(values in proptest::collection::vec(0u64..5_000, 1..100)) {
            let mut h = Histogram::linear(100, 7);
            for &v in &values { h.record(v); }
            let s: f64 = h.fractions().iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }

        /// percentile is monotone in p.
        #[test]
        fn prop_percentile_monotone(mut values in proptest::collection::vec(0u64..100_000, 2..100)) {
            values.sort_unstable();
            let mut last = f64::MIN;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let x = percentile(&values, p).unwrap();
                prop_assert!(x >= last);
                last = x;
            }
        }
    }
}
