//! # bloom — content summaries for petal gossip
//!
//! Flower-CDN content peers "periodically exchange contacts ... and
//! **summaries of their stored content**" (§3.1), and a freshly promoted
//! directory peer answers its first queries "from its content summaries
//! previously received during gossip exchanges" (§6.2.1). The paper does not
//! prescribe a summary encoding; the standard choice for web-cache
//! summaries — and the one used by the related summary-cache literature —
//! is the **Bloom filter**, which is what we implement here.
//!
//! Two variants are provided:
//!
//! * [`BloomFilter`] — the classic insert-only filter used as the on-wire
//!   summary (compact, unionable);
//! * [`CountingBloom`] — a counting variant supporting deletions, used by
//!   peers that evict content (the paper's headline experiments assume no
//!   eviction, but the library supports it).

pub mod hash;

use hash::double_hash;

/// An insert-only Bloom filter over `u64` keys.
///
/// Keys are item identifiers (e.g. an encoded `ObjectId`); the filter
/// guarantees **no false negatives** and a tunable false-positive rate.
///
/// ```
/// use bloom::BloomFilter;
/// let mut summary = BloomFilter::with_rate(100, 0.01);
/// summary.insert(42);
/// assert!(summary.contains(42));        // never a false negative
/// assert!(summary.estimated_fpp() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
    items: usize,
}

impl BloomFilter {
    /// Create a filter sized for `expected_items` at the target
    /// `false_positive_rate` using the standard optimal formulas
    /// `m = -n·ln(p)/ln(2)²` and `k = (m/n)·ln(2)`.
    pub fn with_rate(expected_items: usize, false_positive_rate: f64) -> BloomFilter {
        assert!(
            (1e-10..1.0).contains(&false_positive_rate),
            "false positive rate must be in (0, 1)"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * false_positive_rate.ln()) / (ln2 * ln2)).ceil() as usize;
        let k = ((m as f64 / n) * ln2).round().max(1.0) as u32;
        BloomFilter::with_params(m.max(64), k)
    }

    /// Create a filter with explicit bit count `m` and hash count `k`.
    pub fn with_params(m: usize, k: u32) -> BloomFilter {
        assert!(m > 0 && k > 0);
        BloomFilter {
            bits: vec![0; m.div_ceil(64)],
            m,
            k,
            items: 0,
        }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        for i in 0..self.k {
            let idx = (double_hash(key, u64::from(i)) % self.m as u64) as usize;
            self.bits[idx / 64] |= 1 << (idx % 64);
        }
        self.items += 1;
    }

    /// Query a key. `false` is definite; `true` may be a false positive.
    pub fn contains(&self, key: u64) -> bool {
        (0..self.k).all(|i| {
            let idx = (double_hash(key, u64::from(i)) % self.m as u64) as usize;
            self.bits[idx / 64] & (1 << (idx % 64)) != 0
        })
    }

    /// Number of bits `m`.
    pub fn bit_len(&self) -> usize {
        self.m
    }

    /// Number of hash functions `k`.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// Inserts performed (not distinct keys).
    pub fn inserted(&self) -> usize {
        self.items
    }

    /// Fraction of bits set — a load indicator.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / self.m as f64
    }

    /// Estimated false-positive probability at the current fill:
    /// `(fill_ratio)^k`.
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.k as i32)
    }

    /// In-place union with a filter of identical parameters. Useful when a
    /// directory peer merges summaries from several content peers.
    ///
    /// # Panics
    /// If the parameters differ.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.m, other.m, "bloom union requires equal m");
        assert_eq!(self.k, other.k, "bloom union requires equal k");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.items += other.items;
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.items = 0;
    }

    /// Wire size of the summary in bytes (used by overhead accounting).
    pub fn byte_len(&self) -> usize {
        self.bits.len() * 8
    }

    /// The raw bit words, for serialization.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuild a filter from serialized parts (the inverse of reading
    /// [`BloomFilter::bit_len`], [`BloomFilter::hash_count`],
    /// [`BloomFilter::inserted`] and [`BloomFilter::words`]).
    ///
    /// Returns `None` if the word count does not match `m` or either
    /// parameter is zero, so codecs can reject malformed frames without
    /// panicking.
    pub fn from_parts(m: usize, k: u32, items: usize, words: Vec<u64>) -> Option<BloomFilter> {
        if m == 0 || k == 0 || words.len() != m.div_ceil(64) {
            return None;
        }
        Some(BloomFilter {
            bits: words,
            m,
            k,
            items,
        })
    }
}

/// A counting Bloom filter supporting deletion, with 8-bit saturating
/// counters per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloom {
    counts: Vec<u8>,
    k: u32,
}

impl CountingBloom {
    /// Create with explicit slot count `m` and hash count `k`.
    pub fn with_params(m: usize, k: u32) -> CountingBloom {
        assert!(m > 0 && k > 0);
        CountingBloom {
            counts: vec![0; m],
            k,
        }
    }

    /// Size like [`BloomFilter::with_rate`].
    pub fn with_rate(expected_items: usize, false_positive_rate: f64) -> CountingBloom {
        let proto = BloomFilter::with_rate(expected_items, false_positive_rate);
        CountingBloom::with_params(proto.bit_len(), proto.hash_count())
    }

    fn slots(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let m = self.counts.len() as u64;
        (0..self.k).map(move |i| (double_hash(key, u64::from(i)) % m) as usize)
    }

    /// Insert a key (counters saturate at 255 rather than wrapping).
    pub fn insert(&mut self, key: u64) {
        let slots: Vec<usize> = self.slots(key).collect();
        for idx in slots {
            self.counts[idx] = self.counts[idx].saturating_add(1);
        }
    }

    /// Remove a key previously inserted. Removing a key that was never
    /// inserted may introduce false negatives, as with any counting bloom;
    /// callers must pair inserts and removes.
    pub fn remove(&mut self, key: u64) {
        let slots: Vec<usize> = self.slots(key).collect();
        for idx in slots {
            self.counts[idx] = self.counts[idx].saturating_sub(1);
        }
    }

    /// Query a key.
    pub fn contains(&self, key: u64) -> bool {
        self.slots(key).all(|idx| self.counts[idx] > 0)
    }

    /// Flatten to a plain [`BloomFilter`] for wire transfer.
    pub fn to_bloom(&self) -> BloomFilter {
        let mut b = BloomFilter::with_params(self.counts.len(), self.k);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                b.bits[idx / 64] |= 1 << (idx % 64);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn no_false_negatives_basic() {
        let mut b = BloomFilter::with_rate(1_000, 0.01);
        for k in 0..1_000u64 {
            b.insert(k * 7 + 3);
        }
        for k in 0..1_000u64 {
            assert!(b.contains(k * 7 + 3));
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut b = BloomFilter::with_rate(500, 0.01);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let members: Vec<u64> = (0..500).map(|_| rng.gen()).collect();
        for &m in &members {
            b.insert(m);
        }
        let mut fp = 0u32;
        let trials = 20_000u32;
        for _ in 0..trials {
            let probe: u64 = rng.gen();
            if !members.contains(&probe) && b.contains(probe) {
                fp += 1;
            }
        }
        let rate = f64::from(fp) / f64::from(trials);
        assert!(rate < 0.03, "measured fp rate {rate}");
        assert!(b.estimated_fpp() < 0.03);
    }

    #[test]
    fn union_contains_both_sides() {
        let mut a = BloomFilter::with_params(1024, 4);
        let mut b = BloomFilter::with_params(1024, 4);
        a.insert(1);
        a.insert(2);
        b.insert(3);
        a.union(&b);
        assert!(a.contains(1) && a.contains(2) && a.contains(3));
        assert_eq!(a.inserted(), 3);
    }

    #[test]
    #[should_panic(expected = "equal m")]
    fn union_mismatched_panics() {
        let mut a = BloomFilter::with_params(1024, 4);
        let b = BloomFilter::with_params(512, 4);
        a.union(&b);
    }

    #[test]
    fn clear_resets() {
        let mut b = BloomFilter::with_params(256, 3);
        b.insert(42);
        assert!(b.contains(42));
        b.clear();
        assert!(!b.contains(42));
        assert_eq!(b.fill_ratio(), 0.0);
    }

    #[test]
    fn sizing_formula_sane() {
        let b = BloomFilter::with_rate(1_000, 0.01);
        // ~9.6 bits per item for p=0.01.
        assert!((9_000..11_000).contains(&b.bit_len()), "{}", b.bit_len());
        assert!((6..=8).contains(&b.hash_count()), "{}", b.hash_count());
    }

    #[test]
    fn counting_bloom_remove_restores() {
        let mut c = CountingBloom::with_rate(100, 0.01);
        c.insert(5);
        c.insert(6);
        assert!(c.contains(5));
        c.remove(5);
        assert!(!c.contains(5), "no aliasing at this load");
        assert!(c.contains(6));
    }

    #[test]
    fn counting_bloom_flattens_to_bloom() {
        let mut c = CountingBloom::with_params(512, 4);
        for k in 0..50u64 {
            c.insert(k);
        }
        let b = c.to_bloom();
        for k in 0..50u64 {
            assert!(b.contains(k));
        }
    }

    proptest! {
        #[test]
        fn prop_no_false_negatives(keys in proptest::collection::vec(any::<u64>(), 1..400)) {
            let mut b = BloomFilter::with_rate(400, 0.02);
            for &k in &keys { b.insert(k); }
            for &k in &keys { prop_assert!(b.contains(k)); }
        }

        #[test]
        fn prop_union_is_superset(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            ys in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let mut a = BloomFilter::with_params(4096, 5);
            let mut b = BloomFilter::with_params(4096, 5);
            for &k in &xs { a.insert(k); }
            for &k in &ys { b.insert(k); }
            let mut u = a.clone();
            u.union(&b);
            for &k in xs.iter().chain(ys.iter()) {
                prop_assert!(u.contains(k));
            }
        }

        #[test]
        fn prop_counting_matched_inserts_removes(
            keys in proptest::collection::vec(0u64..1_000, 1..100),
        ) {
            // Insert everything, remove everything: filter must be empty of
            // all inserted keys (no stuck counters), because inserts and
            // removes are exactly paired.
            let mut c = CountingBloom::with_params(8192, 4);
            for &k in &keys { c.insert(k); }
            for &k in &keys { c.remove(k); }
            // After paired removal every counter touched exactly balances,
            // so nothing inserted may remain.
            for &k in &keys {
                prop_assert!(!c.contains(k));
            }
        }

        #[test]
        fn prop_fill_ratio_bounded(keys in proptest::collection::vec(any::<u64>(), 0..500)) {
            let mut b = BloomFilter::with_params(2048, 4);
            for &k in &keys { b.insert(k); }
            let f = b.fill_ratio();
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(b.estimated_fpp() <= 1.0);
        }
    }
}
