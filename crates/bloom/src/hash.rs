//! Self-contained 64-bit hashing used by the Bloom filters and by D-ring's
//! key-management service. We avoid `std::collections::hash_map::DefaultHasher`
//! because its output is unspecified across Rust releases, and reproducibility
//! of simulation runs matters more than raw speed here.

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A strong 64-bit mixer (the `splitmix64` finalizer). Used to derive
/// independent hash functions from a single base hash via seeding.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a 64-bit key with a seed, producing a well-mixed 64-bit value.
pub fn hash_u64(key: u64, seed: u64) -> u64 {
    mix64(key ^ mix64(seed))
}

/// The classic Kirsch–Mitzenmacher double-hashing scheme: derive the i-th
/// hash as `h1 + i*h2`, which preserves Bloom-filter false-positive bounds
/// while needing only two base hashes.
pub fn double_hash(key: u64, i: u64) -> u64 {
    let h1 = hash_u64(key, 0x5bd1_e995);
    let h2 = hash_u64(key, 0xc2b2_ae35) | 1; // odd, so it cycles all slots
    h1.wrapping_add(i.wrapping_mul(h2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // splitmix64's finalizer is a bijection; collisions on a sample of
        // sequential inputs would indicate a broken implementation.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn seeded_hashes_are_independent_looking() {
        // Same key, different seeds should disagree on about half the bits.
        let mut total = 0u32;
        for k in 0..256u64 {
            let a = hash_u64(k, 1);
            let b = hash_u64(k, 2);
            total += (a ^ b).count_ones();
        }
        let avg = f64::from(total) / 256.0;
        assert!((24.0..40.0).contains(&avg), "avg differing bits {avg}");
    }

    #[test]
    fn double_hash_strides_are_odd() {
        for k in 0..64u64 {
            let d = double_hash(k, 1).wrapping_sub(double_hash(k, 0));
            assert_eq!(d % 2, 1, "stride must be odd to cycle all slots");
        }
    }
}
